package core

import (
	"fmt"

	"smbm/internal/bmset"
	"smbm/internal/deque"
	"smbm/internal/obs"
	"smbm/internal/pkt"
)

// Switch is a shared-memory switch instance driven by a Policy. Create
// with New; not safe for concurrent use (run one Switch per goroutine).
type Switch struct {
	cfg    Config
	policy Policy

	// soa is the contiguous structure-of-arrays backing for the per-port
	// hot lanes: the admission and transmission loops walk parallel
	// arrays carved out of this one allocation
	// (qLen|holRes|qWork|vMin|works|speedTab — the same six lanes for
	// every model), so a scan over all ports is cache-linear instead of
	// hopping between separately allocated slices. Models that lack a
	// heterogeneity dimension maintain the degenerate mirror instead of
	// branching per access: the processing model keeps vMin at 1 for
	// non-empty queues and vSum ≡ queue length; the value model keeps
	// qWork ≡ queue length (unit works). Every FastView accessor is
	// therefore a branch-free lane read.
	soa []int

	// works is the engine-private per-port work table (a lane of soa).
	// It is a defensive copy of the configuration: Config.PortWork stays
	// caller-owned and uncorrupted even if a buggy policy writes through
	// the PortWorks FastView slice (verify catches such writes against
	// cfgWorks).
	works []int
	// cfgWorks is the pristine per-port work reference verify() compares
	// works against; never handed out.
	cfgWorks []int

	occ  int
	slot int64

	// Model traits, fixed at construction, that drive every mutator's
	// dispatch instead of per-site model enumeration:
	//
	//   - fifo (processing, combined): FIFO queue discipline — head-of-
	//     line residuals, per-port work requirements, tail push-out, and
	//     the arrivals deques for latency accounting;
	//   - valued (value, combined): heterogeneous intrinsic values — one
	//     bounded multiset per queue backing the min/max/sum mirrors.
	//
	// The pure value model is valued-only (priority-queue discipline:
	// transmission pops the max, push-out pops the min); the combined
	// model is both (FIFO discipline over work-and-value packets).
	fifo   bool
	valued bool

	// Per-queue state. qLen is the packet count (every model). A FIFO
	// queue holding len packets with head-of-line residual hol has total
	// residual work (len-1)*w_i + hol, mirrored incrementally in qWork;
	// the value model mirrors qWork ≡ qLen (unit works). arrivals
	// records the arrival slot of each buffered packet in FIFO order for
	// latency accounting (fifo models only).
	qLen     []int
	holRes   []int
	qWork    []int
	arrivals []deque.Deque

	// Value state (valued models): one bounded multiset per queue; vMin
	// and vSum mirror the per-queue minimum (0 when empty) and value sum
	// so FastView consumers read lanes instead of querying each
	// multiset. The processing model maintains the degenerate mirrors
	// (vMin 1 when non-empty, vSum ≡ qLen), matching its per-queue
	// View semantics. vals additionally mirrors each combined-model FIFO
	// queue's per-packet values in arrival order, so the tail eviction
	// and head-of-line completion know which value leaves the multiset.
	vq   []*bmset.Set
	vMin []int
	vSum []int64
	vals []deque.Deque

	// Incrementally maintained argmax caches over the per-queue length
	// and total-work keys, and the precomputed NHST normalizer
	// Z = sum_j 1/w_j (summed in ascending port order so FastView
	// consumers match the fallback scan bit for bit).
	lenMax     argmax
	workMax    argmax
	invWorkSum float64

	// Fault-injection overrides (see SetPortSpeedup / SetBufferLimit).
	// speedOv, when non-nil, holds a per-port speedup override; a
	// negative entry means "nominal". bufLimit, when positive, caps the
	// effective shared buffer below the configured B.
	speedOv  []int
	bufLimit int

	// Precomputed effective-configuration tables: speedTab[i] is port
	// i's effective per-slot speedup and effBuf the effective shared
	// buffer, refreshed whenever an override changes (New,
	// SetPortSpeedup, ResetSpeedups, SetBufferLimit, Reset) so the
	// per-slot hot loops read a table instead of re-branching on the
	// override state per port per slot.
	speedTab []int
	effBuf   int

	stats   Stats
	perPort []PortCounters

	// Batched arrival phase state (see batch.go): the reusable Batch
	// executor, the policy's optional batch kernel, the undo log and
	// counter checkpoints backing transactional commit/rollback, the
	// buffered trace events, and the epoch-stamped drop-decision memo.
	batchPol   BatchPolicy
	batch      Batch
	undo       []uint64
	undoEv     []evictUndo
	evBuf      []obs.Event
	recSnap    []uint64
	statsSnap  Stats
	savedPC    []PortCounters
	dirtyPorts []int
	dirtyStamp []int64
	// batchSerial and memoEpoch are monotone for the lifetime of the
	// Switch: they only ever increment (beginBatch advances both;
	// accepts and push-outs advance memoEpoch) and survive Reset and
	// SetPolicy untouched, so a dirtyStamp or memoStamp written before
	// either can never alias a stamp issued after — the stamp tables
	// never need clearing. Overflow is a non-concern by construction:
	// both are int64, advanced at most a few times per arriving packet,
	// so even an unbounded daemon (cmd/smbsimd) stepping 10⁹ packets
	// per second would take centuries to wrap. Do not "economize" by
	// rezeroing them on Reset; that would revive stale stamps.
	batchSerial int64
	memoStamp   []int64
	memoStride  int
	memoEpoch   int64

	// Optional observability recorder (see SetRecorder). Every recording
	// site is branch-on-nil, so a detached switch pays one predictable
	// pointer compare per decision — the obs overhead contract.
	rec *obs.Recorder
}

// reserveCap bounds the per-queue deque pre-reservation: queues are
// pre-sized to min(B, reserveCap) so steady-state pushes never allocate
// without letting a huge configured buffer pin memory across all ports.
const reserveCap = 4096

// New builds a switch from cfg driven by policy.
func New(cfg Config, policy Policy) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrBadConfig)
	}
	n := cfg.Ports
	s := &Switch{
		cfg:     cfg,
		policy:  policy,
		perPort: make([]PortCounters, n),
	}
	// Carve the per-port hot lanes out of one contiguous allocation
	// (full-capacity subslices, so an append on one lane can never bleed
	// into the next). The work table is an engine-private copy of the
	// configuration. The lane layout is identical for every model; the
	// traits only decide which side structures (arrival deques, value
	// multisets) exist.
	s.fifo = cfg.Model != ModelValue
	s.valued = cfg.Model != ModelProcessing
	s.soa = make([]int, 6*n)
	s.qLen = s.soa[0*n : 1*n : 1*n]
	s.holRes = s.soa[1*n : 2*n : 2*n]
	s.qWork = s.soa[2*n : 3*n : 3*n]
	s.vMin = s.soa[3*n : 4*n : 4*n]
	s.works = s.soa[4*n : 5*n : 5*n]
	s.speedTab = s.soa[5*n : 6*n : 6*n]
	s.vSum = make([]int64, n)
	reserve := min(cfg.Buffer, reserveCap)
	if s.fifo {
		s.arrivals = make([]deque.Deque, n)
		for i := range s.arrivals {
			s.arrivals[i].Reserve(reserve)
		}
	}
	if s.valued {
		s.vq = make([]*bmset.Set, n)
		for i := range s.vq {
			s.vq[i] = bmset.New(cfg.MaxLabel)
		}
	}
	if s.fifo && s.valued {
		s.vals = make([]deque.Deque, n)
		for i := range s.vals {
			s.vals[i].Reserve(reserve)
		}
	}
	s.cfgWorks = append([]int(nil), cfg.portWork()...)
	copy(s.works, s.cfgWorks)
	s.recomputeSpeedTab()
	s.recomputeEffBuf()
	// Same ascending-port summation order as the NHST fallback scan so
	// FastView thresholds are bit-identical to the plain-View path.
	for _, w := range s.works {
		s.invWorkSum += 1 / float64(w)
	}
	// Batched arrival scratch: preallocated so ArriveBatch stays
	// allocation-free in steady state (the undo log and trace buffer
	// grow amortized to the largest burst seen).
	s.batch.s = s
	s.batchPol, _ = policy.(BatchPolicy)
	s.savedPC = make([]PortCounters, n)
	s.dirtyPorts = make([]int, 0, n)
	s.dirtyStamp = make([]int64, n)
	s.memoStride = cfg.MaxLabel + 1
	s.memoStamp = make([]int64, n*s.memoStride)
	return s, nil
}

// SetPolicy swaps the driving policy on an empty switch, enabling engine
// reuse across policies within a sweep cell (see sim.Run). It fails when
// packets are buffered: admission state belongs to exactly one policy.
func (s *Switch) SetPolicy(policy Policy) error {
	if policy == nil {
		return fmt.Errorf("%w: nil policy", ErrBadConfig)
	}
	if s.occ != 0 {
		return fmt.Errorf("core: SetPolicy with %d packets buffered; Reset first", s.occ)
	}
	s.policy = policy
	s.batchPol, _ = policy.(BatchPolicy)
	return nil
}

// MustNew is New that panics on error; for tests and examples with
// constant configurations.
func MustNew(cfg Config, policy Policy) *Switch {
	s, err := New(cfg, policy)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the switch configuration.
func (s *Switch) Config() Config { return s.cfg }

// Name returns the driving policy's name, identifying this system in
// experiment reports.
func (s *Switch) Name() string { return s.policy.Name() }

// Policy returns the driving policy.
func (s *Switch) Policy() Policy { return s.policy }

// Stats returns a snapshot of the accumulated counters.
func (s *Switch) Stats() Stats { return s.stats }

// PortCounters returns a copy of the per-port counters.
func (s *Switch) PortCounters() []PortCounters {
	out := make([]PortCounters, len(s.perPort))
	copy(out, s.perPort)
	return out
}

// Slot returns the current slot number (completed transmission phases).
func (s *Switch) Slot() int64 { return s.slot }

// --- Fault-injection overrides -------------------------------------------
//
// The methods below are the degradation knobs used by internal/faults:
// they transiently override the nominal configuration without touching
// Config, so a fault window can slow a port's cores, black a port out,
// or squeeze the effective shared buffer, and clearing the override
// restores nominal behaviour exactly.

// SetPortSpeedup overrides port i's per-slot processing cycles
// (processing model) or per-slot transmissions (value model). c == 0
// blacks the port out; a negative c restores the configured Speedup.
// While a port is blacked out Drain cannot terminate if that port holds
// packets — fault injectors clear overrides before draining (see
// internal/faults), and sim.RunTrace bounds drains via DrainMax.
func (s *Switch) SetPortSpeedup(i, c int) {
	if i < 0 || i >= s.cfg.Ports {
		panic(fmt.Sprintf("core: SetPortSpeedup port %d out of [0,%d)", i, s.cfg.Ports))
	}
	if s.speedOv == nil {
		if c < 0 {
			return
		}
		s.speedOv = make([]int, s.cfg.Ports)
		for j := range s.speedOv {
			s.speedOv[j] = -1
		}
	}
	s.speedOv[i] = c
	s.recomputeSpeedTab()
}

// ResetSpeedups clears all per-port speedup overrides, restoring the
// configured Speedup on every port.
func (s *Switch) ResetSpeedups() {
	for i := range s.speedOv {
		s.speedOv[i] = -1
	}
	s.recomputeSpeedTab()
}

// SetBufferLimit transiently caps the effective shared buffer at b
// packets. Policies observe the squeezed value through View.Buffer and
// View.Free, so push-out policies evict via their own rule and
// non-push-out policies tail-drop. Occupancy already above the limit is
// not force-evicted: push-out admissions stay occupancy-neutral and the
// excess drains through transmission. b <= 0 (or b >= the configured B)
// restores the nominal buffer.
func (s *Switch) SetBufferLimit(b int) {
	if b <= 0 {
		s.bufLimit = 0
	} else {
		s.bufLimit = b
	}
	s.recomputeEffBuf()
}

// SetRecorder attaches an observability recorder (nil detaches),
// implementing obs.Target. While attached, every admission decision the
// engine executes — admit, tail-drop, push-out (with the discarded
// residual work and value), head-of-line transmission — is counted per
// port and, when the recorder traces, ringed as an event. The recorder
// must be sized for this switch's port count. Reset does not detach:
// the recorder's lifecycle belongs to the caller (see sim).
func (s *Switch) SetRecorder(r *obs.Recorder) {
	if r != nil && r.Ports() != s.cfg.Ports {
		panic(fmt.Sprintf("core: SetRecorder sized for %d ports on a %d-port switch", r.Ports(), s.cfg.Ports))
	}
	s.rec = r
}

// effSpeedup returns port i's effective per-slot speedup under any
// active override, by reading the precomputed table.
func (s *Switch) effSpeedup(i int) int { return s.speedTab[i] }

// effBuffer returns the effective shared buffer under any active
// squeeze, by reading the precomputed value.
func (s *Switch) effBuffer() int { return s.effBuf }

// recomputeSpeedTab refreshes the per-port effective-speedup table
// from the configured speedup and any active overrides. Called on
// every override change (a cold path) so the per-slot loops never
// re-branch on the override state.
func (s *Switch) recomputeSpeedTab() {
	for i := range s.speedTab {
		if s.speedOv != nil && s.speedOv[i] >= 0 {
			s.speedTab[i] = s.speedOv[i]
		} else {
			s.speedTab[i] = s.cfg.Speedup
		}
	}
}

// recomputeEffBuf refreshes the cached effective buffer from the
// configured B and any active squeeze.
func (s *Switch) recomputeEffBuf() {
	if s.bufLimit > 0 && s.bufLimit < s.cfg.Buffer {
		s.effBuf = s.bufLimit
	} else {
		s.effBuf = s.cfg.Buffer
	}
}

// --- View implementation -------------------------------------------------

// Model implements View.
func (s *Switch) Model() Model { return s.cfg.Model }

// Ports implements View.
func (s *Switch) Ports() int { return s.cfg.Ports }

// Buffer implements View. It reports the effective buffer, which a
// transient SetBufferLimit squeeze may hold below the configured B.
func (s *Switch) Buffer() int { return s.effBuffer() }

// MaxLabel implements View.
func (s *Switch) MaxLabel() int { return s.cfg.MaxLabel }

// Occupancy implements View.
func (s *Switch) Occupancy() int { return s.occ }

// Free implements View. Under a buffer squeeze it never goes negative:
// occupancy above the transient limit reads as a full buffer.
func (s *Switch) Free() int {
	if free := s.effBuffer() - s.occ; free > 0 {
		return free
	}
	return 0
}

// QueueLen implements View.
func (s *Switch) QueueLen(i int) int { return s.qLen[i] }

// PortWork implements View.
func (s *Switch) PortWork(i int) int { return s.works[i] }

// QueueWork implements View. The value model's lane mirrors the queue
// length (unit works), so the read is branch-free in every model.
func (s *Switch) QueueWork(i int) int { return s.qWork[i] }

// QueueMinValue implements View. The processing model maintains the
// degenerate mirror (1 when non-empty, 0 when empty) in the same lane.
func (s *Switch) QueueMinValue(i int) int { return s.vMin[i] }

// QueueMaxValue implements View.
func (s *Switch) QueueMaxValue(i int) int {
	if !s.valued {
		if s.qLen[i] == 0 {
			return 0
		}
		return 1
	}
	if s.vq[i].Empty() {
		return 0
	}
	return s.vq[i].Max()
}

// QueueValueSum implements View. The processing model's lane mirrors
// the queue length (unit values).
func (s *Switch) QueueValueSum(i int) int64 { return s.vSum[i] }

var _ View = (*Switch)(nil)

// --- FastView implementation ---------------------------------------------

// QueueLens implements FastView. The returned slice is live engine
// state and strictly read-only: writing through it corrupts the
// switch (the fastviewro analyzer forbids such writes in the policy
// packages, and verify() under CheckInvariants detects them).
//
//smb:hotpath
func (s *Switch) QueueLens() []int { return s.qLen }

// QueueTotalWorks implements FastView. The returned slice is live
// engine state and strictly read-only (see QueueLens).
//
// In the value model the lane mirrors the per-queue packet counts:
// every value-model packet requires exactly one unit of work, so total
// residual work ≡ queue length by definition, mirroring
// View.QueueWork. Value-model policies must not reinterpret it as a
// processing-work measure — none of the roster policies do;
// TestQueueTotalWorksValueModel pins the equivalence.
//
//smb:hotpath
func (s *Switch) QueueTotalWorks() []int { return s.qWork }

// QueueMinValues implements FastView. The processing model maintains
// the degenerate mirror (1 when non-empty, 0 when empty), matching
// View.QueueMinValue. The returned slice is live engine state and
// strictly read-only (see QueueLens).
//
//smb:hotpath
func (s *Switch) QueueMinValues() []int { return s.vMin }

// QueueSums implements FastView. The processing model's lane mirrors
// the queue lengths (unit values), matching View.QueueValueSum. The
// returned slice is live engine state and strictly read-only (see
// QueueLens).
//
//smb:hotpath
func (s *Switch) QueueSums() []int64 { return s.vSum }

// PortWorks implements FastView. The returned slice is live engine
// state and strictly read-only (see QueueLens); it is the engine's
// private copy of the configured works, so a rogue write corrupts only
// this switch — never the caller-owned Config.PortWork — and verify()
// reports the divergence from the pristine configuration.
//
//smb:hotpath
func (s *Switch) PortWorks() []int { return s.works }

// PortInvWorkSum implements FastView.
//
//smb:hotpath
func (s *Switch) PortInvWorkSum() float64 { return s.invWorkSum }

// LongestQueue implements FastView.
//
//smb:hotpath
func (s *Switch) LongestQueue() (int, int) { return s.lenMax.top(s.qLen) }

// HeaviestQueue implements FastView. In the value model the work lane
// mirrors the queue lengths and the work argmax sees exactly the same
// key movements as the length argmax, so the answer coincides with
// LongestQueue bit for bit.
//
//smb:hotpath
func (s *Switch) HeaviestQueue() (int, int) { return s.workMax.top(s.qWork) }

var _ FastView = (*Switch)(nil)

// --- Simulation -----------------------------------------------------------

// Arrive offers one packet to the policy during the arrival phase and
// executes its decision. It returns an error when the packet is malformed
// for this switch or the policy's decision violates the model (accepting
// into a full buffer, evicting from an empty queue).
//
// Arrive is atomic per packet: a failing packet contributes nothing —
// no queue mutation, no Stats or per-port counter movement, no obs
// event — because every validation (packet shape, victim, buffer
// bound) runs before the first mutation. The one exception is a
// CheckInvariants verify failure, which reports engine corruption
// *after* the triggering packet was applied. Arrive is the executable
// per-packet reference the batched ArriveBatch path is differentially
// tested against.
func (s *Switch) Arrive(p pkt.Packet) error {
	if err := p.Validate(s.cfg.Ports, s.cfg.MaxLabel); err != nil {
		return err
	}
	if s.fifo && p.Work != s.works[p.Port] {
		return fmt.Errorf("core: packet work %d does not match port %d configuration %d", p.Work, p.Port, s.works[p.Port])
	}
	d := s.policy.Admit(s, p)
	if !d.Accept {
		s.stats.Arrived++
		s.perPort[p.Port].Arrived++
		s.stats.Dropped++
		s.perPort[p.Port].Dropped++
		if s.rec != nil {
			s.rec.Inc(p.Port, obs.KindTailDrop)
			s.rec.Trace(s.slot, p.Port, obs.KindTailDrop, p.Work, p.Value)
		}
		return nil
	}
	if d.Push {
		if err := s.canEvict(d.Victim); err != nil {
			return fmt.Errorf("core: policy %s: %w", s.policy.Name(), err)
		}
		// A push-out admission is occupancy-neutral, so during a buffer
		// squeeze it only needs the physical bound — checked against the
		// post-eviction occupancy before evicting, so a violating
		// decision mutates nothing.
		if s.occ-1 >= s.cfg.Buffer {
			return fmt.Errorf("core: policy %s accepted into a full buffer (occ=%d, B=%d)", s.policy.Name(), s.occ-1, s.cfg.Buffer)
		}
		remWork, remValue := s.evict(d.Victim)
		s.stats.PushedOut++
		s.perPort[d.Victim].PushedOut++
		if s.rec != nil {
			s.rec.Inc(d.Victim, obs.KindPushOut)
			s.rec.Add(d.Victim, obs.KindPushedOutWork, uint64(remWork))
			s.rec.Add(d.Victim, obs.KindPushedOutValue, uint64(remValue))
			s.rec.Trace(s.slot, d.Victim, obs.KindPushOut, remWork, remValue)
		}
	} else if s.occ >= s.effBuf {
		// A plain accept needs room below the effective (possibly
		// squeezed) buffer.
		return fmt.Errorf("core: policy %s accepted into a full buffer (occ=%d, B=%d)", s.policy.Name(), s.occ, s.effBuf)
	}
	s.stats.Arrived++
	s.perPort[p.Port].Arrived++
	s.insert(p)
	s.stats.Accepted++
	s.perPort[p.Port].Accepted++
	if s.rec != nil {
		s.rec.Inc(p.Port, obs.KindAdmit)
		s.rec.Trace(s.slot, p.Port, obs.KindAdmit, p.Work, p.Value)
	}
	s.stats.observeOccupancy(s.occ)
	if s.cfg.CheckInvariants {
		return s.verify()
	}
	return nil
}

// BurstError reports a failure inside a burst arrival: which packet
// failed and how many packets of the burst had been fully applied (and
// remain applied) when the failure surfaced.
type BurstError struct {
	// Index is the position of the failing packet within the burst.
	Index int
	// Applied counts the burst's packets whose effects remain in Stats
	// and the per-port counters: Index for the sequential ArriveBurst
	// path (everything before the failure sticks), 0 for the
	// transactional ArriveBatch path (everything rolls back).
	Applied int
	// Err is the underlying per-packet failure.
	Err error
}

// Error implements error.
func (e *BurstError) Error() string {
	return fmt.Sprintf("core: burst packet %d (%d applied): %v", e.Index, e.Applied, e.Err)
}

// Unwrap exposes the underlying failure to errors.Is and errors.As.
func (e *BurstError) Unwrap() error { return e.Err }

// ArriveBurst offers packets in order through the per-packet Arrive
// path, stopping at the first error. A failure is returned as a
// *BurstError whose Index names the failing packet and whose Applied
// count equals Index: Arrive is atomic per packet, so exactly the
// packets preceding the failure contributed to Stats and the per-port
// counters, and the failing packet contributed nothing. (Exception:
// with CheckInvariants set, a verify failure surfaces after the
// triggering packet was applied; the error then describes engine
// corruption, not a rejected packet.)
func (s *Switch) ArriveBurst(ps []pkt.Packet) error {
	for i, p := range ps {
		if err := s.Arrive(p); err != nil {
			return &BurstError{Index: i, Applied: i, Err: err}
		}
	}
	return nil
}

// Transmit runs one transmission phase: every non-empty queue receives
// Speedup processing cycles (processing and combined models) or
// transmits up to Speedup packets (value model). It advances the slot
// counter.
//
//smb:hotpath
func (s *Switch) Transmit() {
	switch s.cfg.Model {
	case ModelProcessing:
		s.transmitProcessing()
	case ModelValue:
		s.transmitValue()
	default:
		s.transmitCombined()
	}
	s.slot++
	s.stats.Slots++
	if s.cfg.CheckInvariants {
		//smb:alloc-ok CheckInvariants debug mode, off in measured runs
		if err := s.verify(); err != nil {
			panic(err) // unreachable unless the engine itself is broken
		}
	}
}

//smb:hotpath
func (s *Switch) transmitProcessing() {
	// Hoist the SoA lanes into locals: the inner loop then indexes flat
	// slices instead of reloading switch fields around every store, and
	// the slot's consumed cycles accumulate into one register flushed to
	// Stats once per phase.
	var (
		speedTab    = s.speedTab
		qLen        = s.qLen
		holRes      = s.holRes
		qWork       = s.qWork
		works       = s.works
		cyclesTotal int64
	)
	for i := 0; i < s.cfg.Ports; i++ {
		budget := speedTab[i]
		if budget == 0 || qLen[i] == 0 {
			continue
		}
		// Per-port accumulators: counters are batched into stats and
		// perPort once per port instead of per completion.
		var (
			cycles    int64
			completed int64
			latSum    int64
		)
		pc := &s.perPort[i]
		for budget > 0 && qLen[i] > 0 {
			use := min(budget, holRes[i])
			holRes[i] -= use
			qWork[i] -= use
			budget -= use
			cycles += int64(use)
			if holRes[i] > 0 {
				break
			}
			// Head-of-line packet completed: transmit it.
			qLen[i]--
			s.occ--
			completed++
			latency := s.slot - s.arrivals[i].PopFront()
			latSum += latency
			if latency > pc.MaxLatency {
				pc.MaxLatency = latency
			}
			if qLen[i] > 0 {
				holRes[i] = works[i]
			}
		}
		if cycles > 0 {
			// Any consumed cycle lowers the queue's total work, but its
			// length (the lenMax key) only changes on a completion.
			s.workMax.drop(i)
			cyclesTotal += cycles
		}
		if completed > 0 {
			s.lenMax.drop(i)
			// Degenerate value mirrors (unit values): the sum lane tracks
			// the queue length, the min lane drops to 0 on empty.
			s.vSum[i] -= completed
			if qLen[i] == 0 {
				s.vMin[i] = 0
			}
			s.stats.Transmitted += completed
			s.stats.TransmittedValue += completed
			s.stats.TransmittedWork += completed * int64(works[i])
			s.stats.LatencySlots += latSum
			pc.Transmitted += completed
			pc.TransmittedValue += completed
			pc.LatencySlots += latSum
			if s.rec != nil {
				s.rec.Add(i, obs.KindHOLTransmit, uint64(completed))
			}
		}
	}
	s.stats.CyclesUsed += cyclesTotal
}

//smb:hotpath
func (s *Switch) transmitValue() {
	for i := 0; i < s.cfg.Ports; i++ {
		// The speedup override cannot change mid-phase, so hoist it and
		// pop the exact count instead of re-testing per packet.
		pops := min(s.speedTab[i], s.qLen[i])
		if pops == 0 {
			continue
		}
		var sum int64
		for c := 0; c < pops; c++ {
			sum += int64(s.vq[i].PopMax())
		}
		s.qLen[i] -= pops
		s.qWork[i] -= pops
		s.vSum[i] -= sum
		if s.qLen[i] == 0 {
			s.vMin[i] = 0
		}
		s.lenMax.drop(i)
		s.workMax.drop(i)
		s.occ -= pops
		p64 := int64(pops)
		s.stats.Transmitted += p64
		s.stats.TransmittedValue += sum
		s.stats.TransmittedWork += p64
		s.stats.CyclesUsed += p64
		s.perPort[i].Transmitted += p64
		s.perPort[i].TransmittedValue += sum
		if s.rec != nil {
			s.rec.Add(i, obs.KindHOLTransmit, uint64(pops))
		}
	}
}

// transmitCombined is the combined-model transmission phase: FIFO
// head-of-line processing exactly like transmitProcessing, with each
// completion crediting the head packet's intrinsic value (tracked in
// the per-queue vals deque) instead of a unit.
//
//smb:hotpath
func (s *Switch) transmitCombined() {
	var (
		speedTab    = s.speedTab
		qLen        = s.qLen
		holRes      = s.holRes
		qWork       = s.qWork
		works       = s.works
		cyclesTotal int64
	)
	for i := 0; i < s.cfg.Ports; i++ {
		budget := speedTab[i]
		if budget == 0 || qLen[i] == 0 {
			continue
		}
		var (
			cycles    int64
			completed int64
			latSum    int64
			valSum    int64
			minHit    bool
		)
		pc := &s.perPort[i]
		for budget > 0 && qLen[i] > 0 {
			use := min(budget, holRes[i])
			holRes[i] -= use
			qWork[i] -= use
			budget -= use
			cycles += int64(use)
			if holRes[i] > 0 {
				break
			}
			// Head-of-line packet completed: transmit it, crediting its
			// value.
			qLen[i]--
			s.occ--
			completed++
			latency := s.slot - s.arrivals[i].PopFront()
			latSum += latency
			if latency > pc.MaxLatency {
				pc.MaxLatency = latency
			}
			v := int(s.vals[i].PopFront())
			s.vq[i].Remove(v)
			s.vSum[i] -= int64(v)
			valSum += int64(v)
			// s.vMin[i] is not touched inside the loop, so comparing the
			// popped value against it detects whether any completion may
			// have removed the last copy of the pre-phase minimum.
			if v == s.vMin[i] {
				minHit = true
			}
			if qLen[i] > 0 {
				holRes[i] = works[i]
			}
		}
		if qLen[i] == 0 {
			s.vMin[i] = 0
		} else if minHit {
			s.vMin[i] = s.vq[i].Min()
		}
		if cycles > 0 {
			s.workMax.drop(i)
			cyclesTotal += cycles
		}
		if completed > 0 {
			s.lenMax.drop(i)
			s.stats.Transmitted += completed
			s.stats.TransmittedValue += valSum
			s.stats.TransmittedWork += completed * int64(works[i])
			s.stats.LatencySlots += latSum
			pc.Transmitted += completed
			pc.TransmittedValue += valSum
			pc.LatencySlots += latSum
			if s.rec != nil {
				s.rec.Add(i, obs.KindHOLTransmit, uint64(completed))
			}
		}
	}
	s.stats.CyclesUsed += cyclesTotal
}

// Step runs one full time slot: the arrival phase over the given burst
// (in order), then the transmission phase. The arrival phase runs
// through the batched ArriveBatch path, which is differentially tested
// to be bit-identical to the per-packet ArriveBurst reference; on
// error the slot's arrivals are rolled back wholesale and the
// transmission phase does not run.
//
//smb:hotpath
func (s *Switch) Step(arrivalsInOrder []pkt.Packet) error {
	if err := s.ArriveBatch(arrivalsInOrder); err != nil {
		return err
	}
	s.Transmit()
	return nil
}

// Drain runs transmission phases with no arrivals until the buffer is
// empty, returning the number of slots consumed. Total residual work is
// finite and strictly decreases, so Drain always terminates — unless a
// SetPortSpeedup(i, 0) blackout override is active on a non-empty port;
// callers that inject faults should clear overrides first or use
// DrainMax.
func (s *Switch) Drain() int {
	var slots int
	for s.occ > 0 {
		s.Transmit()
		slots++
	}
	return slots
}

// DrainMax is Drain bounded to at most max transmission phases. It
// returns the slots consumed and whether the buffer actually emptied;
// sim.RunTrace uses it to turn a non-terminating drain into an error.
func (s *Switch) DrainMax(max int) (int, bool) {
	var slots int
	for s.occ > 0 {
		if slots >= max {
			return slots, false
		}
		s.Transmit()
		slots++
	}
	return slots, true
}

// Reset empties the buffer and zeroes all statistics and fault
// overrides, keeping the configuration and policy.
func (s *Switch) Reset() {
	s.occ = 0
	s.slot = 0
	s.stats = Stats{}
	s.speedOv = nil
	s.bufLimit = 0
	for i := range s.perPort {
		s.perPort[i] = PortCounters{}
	}
	for i := range s.qLen {
		s.qLen[i] = 0
		s.holRes[i] = 0
		s.qWork[i] = 0
		s.vMin[i] = 0
		s.vSum[i] = 0
	}
	for i := range s.arrivals {
		s.arrivals[i].Clear()
	}
	for _, q := range s.vq {
		q.Clear()
	}
	for i := range s.vals {
		s.vals[i].Clear()
	}
	s.lenMax = argmax{}
	s.workMax = argmax{}
	s.recomputeSpeedTab()
	s.recomputeEffBuf()
	// Restore the work table from the pristine configuration so a Reset
	// also clears any corruption a rogue FastView-slice write left
	// behind. The batch serial and memo epoch stay monotone: stale
	// stamps can never match a future batch.
	copy(s.works, s.cfgWorks)
}

// TotalWork returns the total residual work buffered across all queues.
func (s *Switch) TotalWork() int {
	var t int
	for i := 0; i < s.cfg.Ports; i++ {
		t += s.QueueWork(i)
	}
	return t
}

// canEvict validates a push-out victim without mutating anything, so
// the admission paths can reject a violating decision before touching
// state (per-packet atomicity, batch transactionality).
//
//smb:hotpath
func (s *Switch) canEvict(victim int) error {
	if victim < 0 || victim >= s.cfg.Ports {
		//smb:alloc-ok validation failure path, never taken by well-formed input
		return fmt.Errorf("push-out victim %d out of range", victim)
	}
	if s.QueueLen(victim) == 0 {
		//smb:alloc-ok validation failure path, never taken by well-formed input
		return fmt.Errorf("push-out from empty queue %d", victim)
	}
	return nil
}

// evict removes one packet from queue victim — the FIFO tail (fifo
// models: processing and combined) or the minimum value (pure value
// model) — and returns the residual work and intrinsic value the
// eviction discarded: in the fifo models the evicted tail's remaining
// cycles (the whole remaining queue work when the tail is also the
// head-of-line packet, whose partial progress is wasted) plus, in the
// combined model, the tail's intrinsic value; in the value model the
// popped minimum. The victim must have been validated with canEvict
// first. Counter and recorder updates belong to the callers: the
// per-packet Arrive path records directly, the batched path
// transactionally.
//
//smb:hotpath
func (s *Switch) evict(victim int) (remWork, remValue int) {
	remWork, remValue = 1, 1
	if s.fifo {
		if s.qLen[victim] == 1 {
			remWork = s.qWork[victim]
		} else {
			remWork = s.works[victim]
		}
		s.qLen[victim]--
		s.arrivals[victim].PopBack()
		if s.qLen[victim] == 0 {
			// The evicted tail was also the head-of-line packet; any
			// cycles already spent on it are wasted.
			s.holRes[victim] = 0
			s.qWork[victim] = 0
		} else {
			s.qWork[victim] -= s.works[victim]
		}
		if s.valued {
			v := int(s.vals[victim].PopBack())
			remValue = v
			s.vq[victim].Remove(v)
			s.vSum[victim] -= int64(v)
			if s.qLen[victim] == 0 {
				s.vMin[victim] = 0
			} else if v == s.vMin[victim] {
				s.vMin[victim] = s.vq[victim].Min()
			}
		} else {
			s.vSum[victim]--
			if s.qLen[victim] == 0 {
				s.vMin[victim] = 0
			}
		}
	} else {
		m := s.vq[victim].PopMin()
		remValue = m
		s.qLen[victim]--
		s.qWork[victim]--
		s.vSum[victim] -= int64(m)
		if s.qLen[victim] == 0 {
			s.vMin[victim] = 0
		} else {
			s.vMin[victim] = s.vq[victim].Min()
		}
	}
	s.workMax.drop(victim)
	s.lenMax.drop(victim)
	s.occ--
	return remWork, remValue
}

// insert appends p to its destination queue.
//
//smb:hotpath
func (s *Switch) insert(p pkt.Packet) {
	i := p.Port
	s.qLen[i]++
	if s.fifo {
		s.arrivals[i].PushBack(s.slot)
		if s.qLen[i] == 1 {
			s.holRes[i] = s.works[i]
		}
		s.qWork[i] += s.works[i]
	} else {
		s.qWork[i]++
	}
	if s.valued {
		s.vq[i].Add(p.Value)
		s.vSum[i] += int64(p.Value)
		if s.qLen[i] == 1 || p.Value < s.vMin[i] {
			s.vMin[i] = p.Value
		}
		if s.vals != nil {
			s.vals[i].PushBack(int64(p.Value))
		}
	} else {
		s.vSum[i]++
		s.vMin[i] = 1
	}
	s.lenMax.bump(s.qLen, i)
	s.workMax.bump(s.qWork, i)
	s.occ++
}

// verify checks internal consistency; used when CheckInvariants is set.
// Beyond the queue mirrors and conservation laws it re-derives the
// precomputed per-port tables, so a rogue write through a FastView
// slice (PortWorks, QueueLens, ...) is detected at the next checked
// operation instead of silently skewing admissions.
func (s *Switch) verify() error {
	var sum int
	for i := 0; i < s.cfg.Ports; i++ {
		if s.works[i] != s.cfgWorks[i] {
			return fmt.Errorf("core: port %d work table %d != configured %d (write through a read-only FastView slice?)", i, s.works[i], s.cfgWorks[i])
		}
		wantSpeed := s.cfg.Speedup
		if s.speedOv != nil && s.speedOv[i] >= 0 {
			wantSpeed = s.speedOv[i]
		}
		if s.speedTab[i] != wantSpeed {
			return fmt.Errorf("core: port %d speedup table %d != effective %d", i, s.speedTab[i], wantSpeed)
		}
		l := s.QueueLen(i)
		if l < 0 {
			return fmt.Errorf("core: queue %d negative length %d", i, l)
		}
		if s.fifo {
			if l > 0 && (s.holRes[i] < 1 || s.holRes[i] > s.works[i]) {
				return fmt.Errorf("core: queue %d HOL residual %d out of [1,%d]", i, s.holRes[i], s.works[i])
			}
			if l == 0 && s.holRes[i] != 0 {
				return fmt.Errorf("core: empty queue %d has residual %d", i, s.holRes[i])
			}
			if s.arrivals[i].Len() != l {
				return fmt.Errorf("core: queue %d arrival log len %d != len %d", i, s.arrivals[i].Len(), l)
			}
			want := 0
			if l > 0 {
				want = (l-1)*s.works[i] + s.holRes[i]
			}
			if s.qWork[i] != want {
				return fmt.Errorf("core: queue %d incremental work %d != recomputed %d", i, s.qWork[i], want)
			}
		} else if s.qWork[i] != l {
			return fmt.Errorf("core: queue %d work mirror %d != len %d (unit works)", i, s.qWork[i], l)
		}
		if s.valued {
			if l != s.vq[i].Len() {
				return fmt.Errorf("core: queue %d incremental len %d != multiset %d", i, l, s.vq[i].Len())
			}
			if s.vSum[i] != s.vq[i].Sum() {
				return fmt.Errorf("core: queue %d incremental sum %d != multiset %d", i, s.vSum[i], s.vq[i].Sum())
			}
			wantMin := 0
			if !s.vq[i].Empty() {
				wantMin = s.vq[i].Min()
			}
			if s.vMin[i] != wantMin {
				return fmt.Errorf("core: queue %d incremental min %d != multiset %d", i, s.vMin[i], wantMin)
			}
			if s.vals != nil && s.vals[i].Len() != l {
				return fmt.Errorf("core: queue %d value log len %d != len %d", i, s.vals[i].Len(), l)
			}
		} else {
			if s.vSum[i] != int64(l) {
				return fmt.Errorf("core: queue %d sum mirror %d != len %d (unit values)", i, s.vSum[i], l)
			}
			wantMin := 0
			if l > 0 {
				wantMin = 1
			}
			if s.vMin[i] != wantMin {
				return fmt.Errorf("core: queue %d min mirror %d != degenerate %d", i, s.vMin[i], wantMin)
			}
		}
		sum += l
	}
	if sum != s.occ {
		return fmt.Errorf("core: occupancy %d != queue sum %d", s.occ, sum)
	}
	wantBuf := s.cfg.Buffer
	if s.bufLimit > 0 && s.bufLimit < s.cfg.Buffer {
		wantBuf = s.bufLimit
	}
	if s.effBuf != wantBuf {
		return fmt.Errorf("core: effective buffer cache %d != recomputed %d", s.effBuf, wantBuf)
	}
	if s.occ > s.cfg.Buffer {
		return fmt.Errorf("core: occupancy %d exceeds buffer %d", s.occ, s.cfg.Buffer)
	}
	resident := int64(s.occ)
	if got := s.stats.Accepted - s.stats.Transmitted - s.stats.PushedOut; got != resident {
		return fmt.Errorf("core: conservation violated: accepted-transmitted-pushed=%d, resident=%d", got, resident)
	}
	if s.stats.Arrived != s.stats.Accepted+s.stats.Dropped {
		return fmt.Errorf("core: arrived %d != accepted %d + dropped %d", s.stats.Arrived, s.stats.Accepted, s.stats.Dropped)
	}
	return nil
}
