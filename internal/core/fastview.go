package core

// FastView is an optional extension of View implemented by engines that
// maintain per-queue aggregates incrementally instead of recomputing
// them per query. Policies type-assert their View to FastView and take
// an allocation-free fast path when it succeeds; every policy keeps its
// plain-View scan as the fallback (and as the executable reference the
// differential tests replay), so foreign View implementations keep
// working unchanged.
//
// All slice-returning methods expose live engine state: callers must
// treat the slices as read-only and must not retain them across engine
// mutations. Every method is defined in every model: lanes whose
// heterogeneity a model lacks are maintained as exact degenerate
// mirrors (unit works in the value model, unit values in the
// processing model), so policies never need a per-model nil check.
type FastView interface {
	View

	// QueueLens returns the live per-queue packet counts (all models).
	//smb:hotpath
	QueueLens() []int

	// QueueTotalWorks returns the live per-queue total residual work,
	// mirroring View.QueueWork: (|Q_i|-1)·w_i + hol_i under the FIFO
	// disciplines (processing and combined models), |Q_i| in the value
	// model (unit works).
	//smb:hotpath
	QueueTotalWorks() []int

	// QueueMinValues returns the live per-queue minimum buffered value
	// (0 for an empty queue). In the processing model every buffered
	// packet has value 1, so entries are 1 for non-empty queues.
	//smb:hotpath
	QueueMinValues() []int

	// QueueSums returns the live per-queue buffered value sums. In the
	// processing model this equals the queue length (unit values).
	//smb:hotpath
	QueueSums() []int64

	// PortWorks returns the per-port work configuration w_1..w_n (unit
	// works in the value model).
	//smb:hotpath
	PortWorks() []int

	// PortInvWorkSum returns Z = Σ_j 1/w_j, precomputed once from the
	// configuration with the same summation order as the NHST fallback
	// scan so thresholds are bit-identical.
	//smb:hotpath
	PortInvWorkSum() float64

	// LongestQueue returns the index and length of the longest queue,
	// ties resolved to the largest index (the LQD ordering). The engine
	// maintains the answer incrementally across admissions, push-outs
	// and transmissions; amortized O(1).
	//smb:hotpath
	LongestQueue() (idx, length int)

	// HeaviestQueue returns the index and total residual work of the
	// queue with the most buffered work, ties resolved to the largest
	// index (the LWD ordering). Amortized O(1); coincides with
	// LongestQueue in the value model, where works are unit.
	//smb:hotpath
	HeaviestQueue() (idx, work int)
}

// argmax is a lazily repaired argmax-with-largest-index-tie-break cache
// over a slice of per-queue keys. Increasing a key repairs the cache in
// O(1); decreasing the current argmax's key invalidates it, and the next
// query rescans. Under the simulator's workloads queries (one per
// congested arrival) outnumber invalidations (at most one per port per
// slot), so the amortized cost is far below the per-packet O(n) rescan
// it replaces.
type argmax struct {
	idx int
	ok  bool
}

// bump repairs the cache after keys[i] increased.
//
//smb:hotpath
func (a *argmax) bump(keys []int, i int) {
	if !a.ok {
		return
	}
	if keys[i] > keys[a.idx] || (keys[i] == keys[a.idx] && i >= a.idx) {
		a.idx = i
	}
}

// drop invalidates the cache after keys[i] decreased, when necessary.
//
//smb:hotpath
func (a *argmax) drop(i int) {
	if a.ok && i == a.idx {
		a.ok = false
	}
}

// invalidate unconditionally forces the next top query to rescan. The
// batch rollback path uses it instead of replaying bump/drop inverses:
// a valid cache always holds the exact largest-index argmax and an
// invalid one rescans, so forcing a rescan is behaviorally equivalent
// and keeps the undo log free of cache bookkeeping.
//
//smb:hotpath
func (a *argmax) invalidate() { a.ok = false }

// top returns the argmax index and key, rescanning if invalidated. The
// rescan walks backward with a strict comparison — identical result to
// a forward walk that takes ties, but the replacement branch almost
// never fires on the tie-heavy key distributions the equalizing
// policies (LQD, LWD) produce, where a forward walk would update its
// candidate on every tied key.
//
//smb:hotpath
func (a *argmax) top(keys []int) (int, int) {
	if !a.ok {
		best := len(keys) - 1
		for j := best - 1; j >= 0; j-- {
			if keys[j] > keys[best] {
				best = j
			}
		}
		a.idx = best
		a.ok = true
	}
	return a.idx, keys[a.idx]
}
