package core

import "smbm/internal/pkt"

// View is the read-only switch state a Policy may consult when making an
// admission decision. Both switch models implement the full interface;
// value accessors return zero in the processing model and vice versa.
type View interface {
	// Model identifies which generalization is being simulated.
	//smb:hotpath
	Model() Model
	// Ports returns n.
	//smb:hotpath
	Ports() int
	// Buffer returns B.
	//smb:hotpath
	Buffer() int
	// MaxLabel returns k.
	//smb:hotpath
	MaxLabel() int
	// Occupancy returns the number of packets currently buffered.
	//smb:hotpath
	Occupancy() int
	// Free returns Buffer() - Occupancy().
	//smb:hotpath
	Free() int
	// QueueLen returns |Q_i|.
	//smb:hotpath
	QueueLen(i int) int
	// PortWork returns w_i, the required work of port i's packets
	// (1 in the value model).
	//smb:hotpath
	PortWork(i int) int
	// QueueWork returns W_i, the total residual work of Q_i
	// (processing model; equals QueueLen in the value model).
	//smb:hotpath
	QueueWork(i int) int
	// QueueMinValue returns the smallest value buffered in Q_i, or 0 if
	// the queue is empty (value model; 1-valued in the processing model).
	//smb:hotpath
	QueueMinValue(i int) int
	// QueueMaxValue returns the largest value buffered in Q_i, or 0 if
	// empty.
	//smb:hotpath
	QueueMaxValue(i int) int
	// QueueValueSum returns the sum of values buffered in Q_i.
	//smb:hotpath
	QueueValueSum(i int) int64
}

// Decision is a policy's verdict on one arriving packet.
type Decision struct {
	// Accept admits the packet into its destination queue.
	Accept bool
	// Push, valid only with Accept, first evicts one packet from queue
	// Victim: the tail packet in the processing model (FIFO push-out of
	// the last packet, per the paper), the minimum-value packet in the
	// value model (PQ order: lowest value last).
	Push bool
	// Victim is the queue index to evict from when Push is set.
	Victim int
}

// Drop is the decision rejecting the arriving packet.
func Drop() Decision { return Decision{} }

// Accept is the decision admitting the packet without eviction.
func Accept() Decision { return Decision{Accept: true} }

// PushOut is the decision evicting one packet from queue victim and then
// admitting the arriving packet.
func PushOut(victim int) Decision {
	return Decision{Accept: true, Push: true, Victim: victim}
}

// Policy is a buffer management (admission control) policy. Admit is
// called once per arriving packet during the arrival phase, in arrival
// order. Implementations must not retain or mutate the View.
type Policy interface {
	// Name returns the short policy name used in reports ("LWD", ...).
	Name() string
	// Admit decides the fate of arriving packet p given switch state v.
	//smb:hotpath
	Admit(v View, p pkt.Packet) Decision
}

// PolicyFunc adapts a function to the Policy interface.
type PolicyFunc struct {
	// PolicyName is returned by Name.
	PolicyName string
	// Func is invoked by Admit.
	Func func(v View, p pkt.Packet) Decision
}

// Name implements Policy.
func (f PolicyFunc) Name() string { return f.PolicyName }

// Admit implements Policy.
func (f PolicyFunc) Admit(v View, p pkt.Packet) Decision { return f.Func(v, p) }

var _ Policy = PolicyFunc{}
