package core

// Stats accumulates conservation-checkable counters over a simulation run.
type Stats struct {
	// Arrived counts packets offered to the policy.
	Arrived int64
	// Accepted counts packets admitted to the buffer (including ones
	// later pushed out).
	Accepted int64
	// Dropped counts packets rejected on arrival.
	Dropped int64
	// PushedOut counts admitted packets later evicted by a push-out.
	PushedOut int64
	// Transmitted counts packets fully processed and sent.
	Transmitted int64
	// TransmittedValue is the total intrinsic value of transmitted
	// packets (the value model's objective).
	TransmittedValue int64
	// TransmittedWork is the total processing spent on transmitted
	// packets.
	TransmittedWork int64
	// CyclesUsed counts processing cycles consumed, including work spent
	// on packets that were later pushed out (head-of-line preemption).
	CyclesUsed int64
	// LatencySlots sums, over transmitted packets, the number of slots
	// between arrival and transmission (processing model only).
	LatencySlots int64
	// MaxOccupancy is the high-water mark of buffer occupancy.
	MaxOccupancy int
	// Slots counts completed time slots.
	Slots int64
}

// Throughput returns the model objective: transmitted packets in the
// processing model, transmitted value in the value and combined models.
// In the combined model the competitive comparison divides both sides'
// value by the same cycle budget, so total transmitted value is the
// value-per-cycle objective up to that shared normalization (see
// ValuePerCycle for the normalized figure).
func (s Stats) Throughput(m Model) int64 {
	if m == ModelProcessing {
		return s.Transmitted
	}
	return s.TransmittedValue
}

// ValuePerCycle returns the combined-model objective normalized by the
// processing cycles actually consumed: transmitted value per cycle, or
// 0 when no cycle was spent.
func (s Stats) ValuePerCycle() float64 {
	if s.CyclesUsed == 0 {
		return 0
	}
	return float64(s.TransmittedValue) / float64(s.CyclesUsed)
}

// LossRate returns the fraction of arrived packets that were not
// transmitted, in [0,1]. Packets still buffered count as lost; call
// (*Switch).Drain first for a conservation-exact figure.
func (s Stats) LossRate() float64 {
	if s.Arrived == 0 {
		return 0
	}
	return 1 - float64(s.Transmitted)/float64(s.Arrived)
}

// MeanLatency returns the average slots a transmitted packet spent in the
// switch (processing model), or 0 when nothing was transmitted.
func (s Stats) MeanLatency() float64 {
	if s.Transmitted == 0 {
		return 0
	}
	return float64(s.LatencySlots) / float64(s.Transmitted)
}

// observeOccupancy tracks the buffer high-water mark.
func (s *Stats) observeOccupancy(occ int) {
	if occ > s.MaxOccupancy {
		s.MaxOccupancy = occ
	}
}

// PortCounters carries one output port's share of the run, the
// starvation-visibility counters motivating the paper's shared-memory
// design (a single priority queue starves expensive classes; per-port
// queues do not).
type PortCounters struct {
	// Arrived counts packets destined to this port.
	Arrived int64
	// Accepted counts admissions into this port's queue.
	Accepted int64
	// Dropped counts rejections of this port's arrivals.
	Dropped int64
	// PushedOut counts evictions from this port's queue.
	PushedOut int64
	// Transmitted counts this port's completed packets.
	Transmitted int64
	// TransmittedValue is the value delivered through this port.
	TransmittedValue int64
	// LatencySlots sums transmitted packets' buffer residence
	// (processing model only).
	LatencySlots int64
	// MaxLatency is the largest single-packet latency observed
	// (processing model only).
	MaxLatency int64
}

// MeanLatency returns the port's average transmitted-packet latency.
func (p PortCounters) MeanLatency() float64 {
	if p.Transmitted == 0 {
		return 0
	}
	return float64(p.LatencySlots) / float64(p.Transmitted)
}

// DeliveryRate returns transmitted/arrived for the port, 1 when idle.
func (p PortCounters) DeliveryRate() float64 {
	if p.Arrived == 0 {
		return 1
	}
	return float64(p.Transmitted) / float64(p.Arrived)
}
