package core

import (
	"testing"

	"smbm/internal/pkt"
)

// FuzzDecisionExecutor drives the engine with a byte-scripted policy
// that emits arbitrary (possibly invalid) decisions. The engine must
// never panic: invalid decisions surface as errors and valid ones keep
// every invariant (checked per step).
func FuzzDecisionExecutor(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, []byte{1, 2, 0, 3}, false)
	f.Add([]byte{255, 254, 253}, []byte{0, 0, 0, 0, 0, 0, 0, 0}, true)
	f.Add([]byte{}, []byte{7}, false)
	f.Fuzz(func(t *testing.T, script []byte, arrivals []byte, valueModel bool) {
		cfg := Config{
			Ports:           3,
			Buffer:          4,
			MaxLabel:        3,
			Speedup:         1,
			CheckInvariants: true,
		}
		if valueModel {
			cfg.Model = ModelValue
		} else {
			cfg.Model = ModelProcessing
			cfg.PortWork = []int{1, 2, 3}
		}
		step := 0
		scripted := PolicyFunc{PolicyName: "fuzz", Func: func(v View, _ pkt.Packet) Decision {
			if len(script) == 0 {
				return Drop()
			}
			b := script[step%len(script)]
			step++
			switch b % 4 {
			case 0:
				return Drop()
			case 1:
				return Accept()
			default:
				// Victim may be out of range or empty: the engine must
				// reject such decisions with an error, not a panic.
				return PushOut(int(b%5) - 1)
			}
		}}
		sw := MustNew(cfg, scripted)
		for i, a := range arrivals {
			port := int(a) % cfg.Ports
			var p pkt.Packet
			if valueModel {
				p = pkt.NewValue(port, 1+int(a)%cfg.MaxLabel)
			} else {
				p = pkt.NewWork(port, cfg.PortWork[port])
			}
			if err := sw.Arrive(p); err != nil {
				// Invalid scripted decision: acceptable, stop this run.
				return
			}
			if i%3 == 2 {
				sw.Transmit()
			}
		}
		sw.Drain()
		st := sw.Stats()
		if st.Arrived != st.Accepted+st.Dropped {
			t.Fatalf("conservation broken: %+v", st)
		}
		if st.Accepted != st.Transmitted+st.PushedOut {
			t.Fatalf("conservation broken after drain: %+v", st)
		}
	})
}
