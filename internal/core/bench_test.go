package core

import (
	"math/rand"
	"testing"

	"smbm/internal/pkt"
)

// benchTrace builds a saturating random burst sequence for the config.
func benchTrace(cfg Config, slots, burst int) [][]pkt.Packet {
	rng := rand.New(rand.NewSource(1))
	tr := make([][]pkt.Packet, slots)
	for s := range tr {
		bs := make([]pkt.Packet, burst)
		for i := range bs {
			port := rng.Intn(cfg.Ports)
			if cfg.Model == ModelValue {
				bs[i] = pkt.NewValue(port, 1+rng.Intn(cfg.MaxLabel))
			} else {
				bs[i] = pkt.NewWork(port, cfg.PortWork[port])
			}
		}
		tr[s] = bs
	}
	return tr
}

func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	tr := benchTrace(cfg, 256, 8)
	sw := MustNew(cfg, PolicyFunc{PolicyName: "greedy", Func: func(v View, _ pkt.Packet) Decision {
		if v.Free() > 0 {
			return Accept()
		}
		return Drop()
	}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, burst := range tr {
			if err := sw.Step(burst); err != nil {
				b.Fatal(err)
			}
		}
		sw.Reset()
	}
}

func BenchmarkProcessingModelStep(b *testing.B) {
	benchRun(b, Config{
		Model: ModelProcessing, Ports: 16, Buffer: 128, MaxLabel: 16,
		Speedup: 1, PortWork: ContiguousWorks(16),
	})
}

func BenchmarkValueModelStep(b *testing.B) {
	benchRun(b, Config{
		Model: ModelValue, Ports: 16, Buffer: 128, MaxLabel: 16, Speedup: 1,
	})
}

// BenchmarkInvariantCheckingOverhead is the ablation for the
// CheckInvariants design flag: same workload with per-step verification.
func BenchmarkInvariantCheckingOverhead(b *testing.B) {
	benchRun(b, Config{
		Model: ModelProcessing, Ports: 16, Buffer: 128, MaxLabel: 16,
		Speedup: 1, PortWork: ContiguousWorks(16), CheckInvariants: true,
	})
}
