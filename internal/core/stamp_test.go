package core

import (
	"testing"

	"smbm/internal/pkt"
)

// These tests pin the lifetime contract of the epoch-stamped batch
// state (batchSerial, memoEpoch, and the stamp tables they guard):
// both counters are monotone across Reset and SetPolicy — they are
// never rezeroed — so a stamp recorded in any earlier incarnation of
// the switch state can never alias a live one. That is what lets an
// unbounded daemon (cmd/smbsimd) run stream after stream over one
// Switch without ever clearing the memo tables; the wraparound story
// (int64, a few increments per packet, centuries to overflow) is
// documented on the field declarations in switch.go.

// stampedDropper drops everything through the memo so every burst
// leaves live memo stamps behind.
var stampedDropper = PolicyFunc{PolicyName: "stampedDropper", Func: func(View, pkt.Packet) Decision {
	return Drop()
}}

func TestBatchStampsMonotoneAcrossResetAndPolicySwap(t *testing.T) {
	cfg := validProcCfg()
	sw := MustNew(cfg, greedy)
	burst := []pkt.Packet{{Port: 0, Work: 1, Value: 1}, {Port: 1, Work: 2, Value: 2}}

	if sw.batchSerial != 0 || sw.memoEpoch != 0 {
		t.Fatalf("fresh switch stamps = (%d, %d), want (0, 0)", sw.batchSerial, sw.memoEpoch)
	}
	if err := sw.ArriveBatch(burst); err != nil {
		t.Fatalf("ArriveBatch: %v", err)
	}
	serial1, epoch1 := sw.batchSerial, sw.memoEpoch
	if serial1 <= 0 || epoch1 <= 0 {
		t.Fatalf("stamps after one batch = (%d, %d), want both positive", serial1, epoch1)
	}

	// Reset clears every queue and counter but must leave the stamps in
	// place: rezeroing them would let pre-Reset memo entries validate
	// against post-Reset epochs.
	sw.Reset()
	if sw.batchSerial != serial1 || sw.memoEpoch != epoch1 {
		t.Fatalf("Reset moved stamps: (%d, %d) -> (%d, %d)", serial1, epoch1, sw.batchSerial, sw.memoEpoch)
	}
	if err := sw.ArriveBatch(burst); err != nil {
		t.Fatalf("ArriveBatch after Reset: %v", err)
	}
	serial2, epoch2 := sw.batchSerial, sw.memoEpoch
	if serial2 <= serial1 || epoch2 <= epoch1 {
		t.Fatalf("stamps not monotone across Reset: (%d, %d) then (%d, %d)", serial1, epoch1, serial2, epoch2)
	}

	// Same across a policy swap — the daemon's between-streams path is
	// exactly Reset + SetPolicy on a long-lived switch.
	sw.Reset()
	if err := sw.SetPolicy(stampedDropper); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	if sw.batchSerial != serial2 || sw.memoEpoch != epoch2 {
		t.Fatalf("SetPolicy moved stamps: (%d, %d) -> (%d, %d)", serial2, epoch2, sw.batchSerial, sw.memoEpoch)
	}
	if err := sw.ArriveBatch(burst); err != nil {
		t.Fatalf("ArriveBatch after SetPolicy: %v", err)
	}
	if sw.batchSerial <= serial2 || sw.memoEpoch <= epoch2 {
		t.Fatalf("stamps not monotone across SetPolicy: (%d, %d) then (%d, %d)",
			serial2, epoch2, sw.batchSerial, sw.memoEpoch)
	}
}

// TestMemoStampNeverRevivesAcrossReset drives the aliasing scenario the
// monotone epochs rule out: a (port, value) memoized as a drop before
// Reset must not register as a known drop in any batch after it.
func TestMemoStampNeverRevivesAcrossReset(t *testing.T) {
	cfg := validProcCfg()
	p := pkt.Packet{Port: 2, Work: 3, Value: 4}
	var known []bool
	probe := batchProbe{p: p, known: &known}
	sw := MustNew(cfg, probe)

	// Stamp p's (port, value) in the memo, then Reset.
	if err := sw.ArriveBatch([]pkt.Packet{p}); err != nil {
		t.Fatalf("ArriveBatch: %v", err)
	}
	sw.Reset()
	if err := sw.ArriveBatch([]pkt.Packet{p, p}); err != nil {
		t.Fatalf("ArriveBatch after Reset: %v", err)
	}
	if len(known) != 3 {
		t.Fatalf("probe saw %d decisions for p, want 3", len(known))
	}
	if known[0] {
		t.Fatalf("fresh memo reported a known drop")
	}
	if known[1] {
		t.Fatalf("pre-Reset memo stamp validated in a post-Reset batch")
	}
	if !known[2] {
		t.Fatalf("same-batch DropMemo stamp did not validate")
	}
}

// batchProbe is a BatchPolicy that memo-drops every packet and records
// KnownDrop's verdict for the probed packet before each decision.
type batchProbe struct {
	p     pkt.Packet
	known *[]bool
}

func (b batchProbe) Name() string { return "batchProbe" }

func (b batchProbe) Admit(View, pkt.Packet) Decision { return Drop() }

func (b batchProbe) AdmitBatch(batch *Batch, ps []pkt.Packet) {
	for _, p := range ps {
		if p == b.p {
			*b.known = append(*b.known, batch.KnownDrop(p))
		}
		batch.DropMemo(p)
	}
}
