package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"smbm/internal/obs"
	"smbm/internal/pkt"
)

// snapState captures everything ArriveBatch promises to leave untouched
// on a mid-batch failure.
type snapState struct {
	stats   Stats
	perPort []PortCounters
	occ     int
	lens    []int
	works   []int
	mins    []int
	sums    []int64
	obsSnap *obs.Snapshot
}

func captureState(s *Switch, rec *obs.Recorder) snapState {
	st := snapState{
		stats:   s.Stats(),
		perPort: s.PortCounters(),
		occ:     s.Occupancy(),
		lens:    append([]int(nil), s.QueueLens()...),
		works:   append([]int(nil), s.PortWorks()...),
	}
	if s.Model() == ModelValue {
		st.mins = append([]int(nil), s.QueueMinValues()...)
		st.sums = append([]int64(nil), s.QueueSums()...)
	}
	if rec != nil {
		st.obsSnap = rec.Snapshot()
	}
	return st
}

func requireState(t *testing.T, s *Switch, rec *obs.Recorder, want snapState) {
	t.Helper()
	if got := s.Stats(); got != want.stats {
		t.Errorf("Stats not restored\n got: %+v\nwant: %+v", got, want.stats)
	}
	if got := s.PortCounters(); !reflect.DeepEqual(got, want.perPort) {
		t.Errorf("PortCounters not restored\n got: %+v\nwant: %+v", got, want.perPort)
	}
	if got := s.Occupancy(); got != want.occ {
		t.Errorf("Occupancy not restored: got %d, want %d", got, want.occ)
	}
	if got := s.QueueLens(); !reflect.DeepEqual(got, want.lens) {
		t.Errorf("QueueLens not restored: got %v, want %v", got, want.lens)
	}
	if got := s.PortWorks(); !reflect.DeepEqual(got, want.works) {
		t.Errorf("PortWorks not restored: got %v, want %v", got, want.works)
	}
	if s.Model() == ModelValue {
		if got := s.QueueMinValues(); !reflect.DeepEqual(got, want.mins) {
			t.Errorf("QueueMinValues not restored: got %v, want %v", got, want.mins)
		}
		if got := s.QueueSums(); !reflect.DeepEqual(got, want.sums) {
			t.Errorf("QueueSums not restored: got %v, want %v", got, want.sums)
		}
	}
	if rec != nil {
		if got := rec.Snapshot(); !reflect.DeepEqual(got, want.obsSnap) {
			t.Errorf("obs counters not restored\n got: %+v\nwant: %+v", got, want.obsSnap)
		}
	}
}

// scriptPolicy admits according to a fixed per-call decision script.
type scriptPolicy struct {
	script []Decision
	calls  int
}

func (p *scriptPolicy) Name() string { return "script" }

func (p *scriptPolicy) Admit(View, pkt.Packet) Decision {
	d := p.script[p.calls]
	p.calls++
	return d
}

// TestArriveBatchRollbackProcessing: a batch whose policy first performs
// a valid push-out admission and then returns an invalid victim must
// leave the switch exactly in its pre-batch state — queues, residuals,
// Stats, per-port counters and obs counters all restored, the batch
// reported as zero packets applied.
func TestArriveBatchRollbackProcessing(t *testing.T) {
	cfg := validProcCfg()
	cfg.Buffer = 4
	cfg.CheckInvariants = true
	// Decisions 0-3 fill the buffer; in the faulty batch, decision 4 is a
	// valid push-out from port 1 (mutates queues and counters) and
	// decision 5 an out-of-range victim (fails); decision 6 serves the
	// post-rollback liveness check.
	script := &scriptPolicy{script: []Decision{
		Accept(), Accept(), Accept(), Accept(),
		PushOut(1), PushOut(99),
		Accept(),
	}}
	sw := MustNew(cfg, script)
	rec := obs.NewRecorder(cfg.Ports, 16)
	sw.SetRecorder(rec)

	// Fill the buffer: two packets on port 1, one on ports 0 and 2.
	fill := []pkt.Packet{pkt.NewWork(1, 2), pkt.NewWork(1, 2), pkt.NewWork(0, 1), pkt.NewWork(2, 3)}
	if err := sw.ArriveBurst(fill); err != nil {
		t.Fatal(err)
	}
	sw.Transmit() // advance a slot so latency bookkeeping is nontrivial

	want := captureState(sw, rec)

	err := sw.ArriveBatch([]pkt.Packet{pkt.NewWork(3, 6), pkt.NewWork(3, 6)})
	var be *BurstError
	if !errors.As(err, &be) {
		t.Fatalf("ArriveBatch error = %v, want *BurstError", err)
	}
	if be.Index != 1 || be.Applied != 0 {
		t.Errorf("BurstError = {Index: %d, Applied: %d}, want {Index: 1, Applied: 0}", be.Index, be.Applied)
	}
	requireState(t, sw, rec, want)

	// The rolled-back switch must remain fully operational, with
	// invariant checking still passing.
	if err := sw.Step([]pkt.Packet{pkt.NewWork(0, 1)}); err != nil {
		t.Fatalf("post-rollback Step: %v", err)
	}
}

// TestArriveBatchRollbackValue exercises the value-model undo paths:
// rolling back a push-out admission must re-insert the evicted minimum
// into the victim's multiset and remove the accepted value again,
// restoring lengths, minima and sums exactly.
func TestArriveBatchRollbackValue(t *testing.T) {
	cfg := validValCfg()
	cfg.Buffer = 4
	cfg.CheckInvariants = true
	// Decisions 0-3 fill the buffer; in the faulty batch, decision 4
	// evicts port 0's minimum (value 1) to admit value 4, and decision 5
	// plain-accepts into the full buffer (fails).
	script := &scriptPolicy{script: []Decision{
		Accept(), Accept(), Accept(), Accept(),
		PushOut(0), Accept(),
	}}
	sw := MustNew(cfg, script)
	rec := obs.NewRecorder(cfg.Ports, 16)
	sw.SetRecorder(rec)

	fill := []pkt.Packet{pkt.NewValue(0, 1), pkt.NewValue(0, 3), pkt.NewValue(1, 2), pkt.NewValue(2, 4)}
	if err := sw.ArriveBurst(fill); err != nil {
		t.Fatal(err)
	}

	want := captureState(sw, rec)

	err := sw.ArriveBatch([]pkt.Packet{pkt.NewValue(0, 4), pkt.NewValue(1, 4)})
	var be *BurstError
	if !errors.As(err, &be) {
		t.Fatalf("ArriveBatch error = %v, want *BurstError", err)
	}
	if be.Index != 1 || be.Applied != 0 {
		t.Errorf("BurstError = {Index: %d, Applied: %d}, want {Index: 1, Applied: 0}", be.Index, be.Applied)
	}
	if !strings.Contains(err.Error(), "full buffer") {
		t.Errorf("error %q does not name the full-buffer violation", err)
	}
	requireState(t, sw, rec, want)
}

// lazyBatch is a BatchPolicy whose kernel forgets the tail of the burst.
type lazyBatch struct{}

func (lazyBatch) Name() string { return "lazy" }

func (lazyBatch) Admit(v View, _ pkt.Packet) Decision {
	if v.Free() > 0 {
		return Accept()
	}
	return Drop()
}

func (lazyBatch) AdmitBatch(b *Batch, ps []pkt.Packet) {
	if len(ps) > 0 {
		b.Apply(Accept(), ps[0])
	}
}

// TestArriveBatchUndecidedKernel: a kernel that decides fewer packets
// than it was handed is a policy bug; the engine must report it and
// roll the decided prefix back.
func TestArriveBatchUndecidedKernel(t *testing.T) {
	cfg := validProcCfg()
	sw := MustNew(cfg, lazyBatch{})
	want := captureState(sw, nil)
	err := sw.ArriveBatch([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(0, 1)})
	if err == nil || !strings.Contains(err.Error(), "decided 1 of 2") {
		t.Fatalf("ArriveBatch error = %v, want undecided-packet report", err)
	}
	requireState(t, sw, nil, want)
}

// TestArriveBurstPartialFailure pins the sequential burst semantics: the
// error names the failing packet's index, Applied equals that index, and
// the counters reflect exactly the applied prefix.
func TestArriveBurstPartialFailure(t *testing.T) {
	sw := MustNew(validProcCfg(), greedy)
	burst := []pkt.Packet{
		pkt.NewWork(0, 1),
		pkt.NewWork(1, 2),
		pkt.NewWork(99, 1), // invalid port
		pkt.NewWork(2, 3),
	}
	err := sw.ArriveBurst(burst)
	var be *BurstError
	if !errors.As(err, &be) {
		t.Fatalf("ArriveBurst error = %v, want *BurstError", err)
	}
	if be.Index != 2 || be.Applied != 2 {
		t.Errorf("BurstError = {Index: %d, Applied: %d}, want {Index: 2, Applied: 2}", be.Index, be.Applied)
	}
	if be.Unwrap() == nil {
		t.Error("BurstError.Unwrap returned nil")
	}
	if got := sw.Stats().Arrived; got != 2 {
		t.Errorf("Stats.Arrived = %d, want 2 (only the applied prefix)", got)
	}
	if got := sw.Stats().Accepted; got != 2 {
		t.Errorf("Stats.Accepted = %d, want 2", got)
	}
	if got := sw.Occupancy(); got != 2 {
		t.Errorf("Occupancy = %d, want 2", got)
	}
}

// TestQueueTotalWorksValueModel pins the value-model meaning of
// QueueTotalWorks: every packet carries unit work, so the per-queue
// total work is the queue length itself (the engine returns its live
// length mirror). LWD's HeaviestQueue coincides with LongestQueue for
// the same reason.
func TestQueueTotalWorksValueModel(t *testing.T) {
	sw := MustNew(validValCfg(), greedy)
	if err := sw.ArriveBurst([]pkt.Packet{
		pkt.NewValue(0, 2), pkt.NewValue(0, 3), pkt.NewValue(2, 1),
	}); err != nil {
		t.Fatal(err)
	}
	tw := sw.QueueTotalWorks()
	for i := 0; i < sw.Ports(); i++ {
		if tw[i] != sw.QueueLen(i) {
			t.Errorf("QueueTotalWorks()[%d] = %d, want queue length %d", i, tw[i], sw.QueueLen(i))
		}
	}
	if want := []int{2, 0, 1, 0}; !reflect.DeepEqual(tw, want) {
		t.Errorf("QueueTotalWorks() = %v, want %v", tw, want)
	}
}

// TestFastViewAliasingDetected is the regression test for the FastView
// slice-aliasing bug class: a policy that writes through a
// FastView-returned slice corrupts engine state the engine itself never
// rewrites per-slot. The engine must (a) keep the caller's Config slice
// isolated from the corruption, (b) detect the tamper via invariant
// verification, and (c) recover fully on Reset. The fastviewro smblint
// analyzer forbids such writes statically in the policy packages; this
// test pins the dynamic defenses for policies outside them.
func TestFastViewAliasingDetected(t *testing.T) {
	cfg := validProcCfg()
	cfg.CheckInvariants = true
	callerWorks := append([]int(nil), cfg.PortWork...)

	mutator := PolicyFunc{PolicyName: "mutator", Func: func(v View, _ pkt.Packet) Decision {
		f := v.(FastView)
		f.PortWorks()[0] = 999 // illegal: FastView slices are read-only
		return Accept()
	}}
	sw := MustNew(cfg, mutator)
	err := sw.Arrive(pkt.NewWork(0, 1))
	if err == nil || !strings.Contains(err.Error(), "read-only FastView slice") {
		t.Fatalf("Arrive error = %v, want work-table tamper report", err)
	}
	if !reflect.DeepEqual(cfg.PortWork, callerWorks) {
		t.Errorf("caller's Config.PortWork mutated to %v (engine must own a private copy)", cfg.PortWork)
	}

	// Reset restores the pristine work table from the engine's private
	// reference copy; the switch must be fully usable again.
	sw.Reset()
	if err := sw.SetPolicy(greedy); err != nil {
		t.Fatal(err)
	}
	if err := sw.Step([]pkt.Packet{pkt.NewWork(0, 1), pkt.NewWork(1, 2)}); err != nil {
		t.Fatalf("post-Reset Step: %v", err)
	}

	// Queue-length tampering is likewise caught by the occupancy/mirror
	// cross-check.
	lenMutator := PolicyFunc{PolicyName: "len-mutator", Func: func(v View, _ pkt.Packet) Decision {
		v.(FastView).QueueLens()[1] += 3
		return Accept()
	}}
	sw2 := MustNew(cfg, lenMutator)
	if err := sw2.Arrive(pkt.NewWork(0, 1)); err == nil {
		t.Error("queue-length tamper went undetected under CheckInvariants")
	}
}

// TestArriveBatchTraceBuffering: decision events from a failed batch
// must never reach the trace ring — they are buffered and only flushed
// on commit.
func TestArriveBatchTraceBuffering(t *testing.T) {
	cfg := validProcCfg()
	cfg.Buffer = 4
	// Decisions 0-3 fill the buffer; the faulty batch drops (decision 4,
	// traced into the event buffer) then accepts into the full buffer
	// (decision 5, fails); decision 6 is the committed drop.
	script := &scriptPolicy{script: []Decision{
		Accept(), Accept(), Accept(), Accept(),
		Drop(), Accept(),
		Drop(),
	}}
	sw := MustNew(cfg, script)
	rec := obs.NewRecorder(cfg.Ports, 16)
	sw.SetRecorder(rec)

	if err := sw.ArriveBurst([]pkt.Packet{
		pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(0, 1), pkt.NewWork(0, 1),
	}); err != nil {
		t.Fatal(err)
	}
	preEvents := len(rec.Snapshot().Events)

	if err := sw.ArriveBatch([]pkt.Packet{pkt.NewWork(1, 2), pkt.NewWork(1, 2)}); err == nil {
		t.Fatal("faulty batch succeeded")
	}
	if got := len(rec.Snapshot().Events); got != preEvents {
		t.Errorf("trace ring holds %d events after rollback, want %d (failed batch must not trace)", got, preEvents)
	}

	// A committed batch delivers its events in decision order.
	if err := sw.ArriveBatch([]pkt.Packet{pkt.NewWork(1, 2)}); err != nil {
		t.Fatal(err)
	}
	events := rec.Snapshot().Events
	if len(events) != preEvents+1 {
		t.Fatalf("trace ring holds %d events, want %d", len(events), preEvents+1)
	}
	last := events[len(events)-1]
	if last.Kind != obs.KindTailDrop || last.Port != 1 {
		t.Errorf("last event = %+v, want tail-drop on port 1 (buffer full)", last)
	}
}
