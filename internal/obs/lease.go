package obs

// LeaseCounts aggregates one process's lease-ledger activity during a
// distributed sweep (internal/lease): how many cell leases it took, how
// often it renewed them, how much contention and reclamation it saw.
// The counters ride next to the decision-counter table in sweep reports
// so an operator can tell a healthy fleet (completes ≈ leases, few
// conflicts) from a churning one (reclaims and abandons climbing) at a
// glance. Unlike KindCounts these are harness-level counters: they
// never enter the merged simulation results, so the merged SweepResult
// of a distributed run stays bit-identical to a single-process run.
type LeaseCounts struct {
	// Leases counts cell leases this process acquired (including
	// re-acquisitions after a conflict or reclaim).
	Leases uint64 `json:"leases"`
	// Renewals counts heartbeat deadline extensions appended.
	Renewals uint64 `json:"renewals"`
	// Completes counts cells this process completed and journaled.
	Completes uint64 `json:"completes"`
	// Abandons counts leases this process released early because the
	// cell failed (the cell becomes retryable by any worker).
	Abandons uint64 `json:"abandons"`
	// Conflicts counts lease races lost to another worker: the fencing
	// verification scan showed a competing lease winning the cell.
	Conflicts uint64 `json:"conflicts"`
	// Reclaims counts leases acquired over an expired predecessor — the
	// signature of taking over for a crashed or hung worker.
	Reclaims uint64 `json:"reclaims"`
	// Waits counts backoff pauses taken because every pending cell was
	// leased by other workers.
	Waits uint64 `json:"waits"`
}

// Accumulate adds o into c lane by lane.
func (c *LeaseCounts) Accumulate(o LeaseCounts) {
	c.Leases += o.Leases
	c.Renewals += o.Renewals
	c.Completes += o.Completes
	c.Abandons += o.Abandons
	c.Conflicts += o.Conflicts
	c.Reclaims += o.Reclaims
	c.Waits += o.Waits
}
