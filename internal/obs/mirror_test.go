package obs

import (
	"testing"
)

// TestMirrorConcurrentReads publishes from the owning goroutine while
// a reader snapshots continuously; under -race this checks the
// atomic-store/atomic-load pairing, and the assertions pin per-counter
// monotonicity between resets.
func TestMirrorConcurrentReads(t *testing.T) {
	const ports, rounds = 4, 2000
	rec := NewRecorder(ports, 0)
	m := NewMirror(ports)

	stop := make(chan struct{})
	readerDone := make(chan error, 1)
	go func() {
		var last uint64
		for {
			select {
			case <-stop:
				readerDone <- nil
				return
			default:
			}
			total := m.Total(KindAdmit)
			if total < last {
				readerDone <- errNonMonotone(last, total)
				return
			}
			last = total
			_ = m.Snapshot()
		}
	}()

	for i := 0; i < rounds; i++ {
		rec.Inc(i%ports, KindAdmit)
		rec.Add(i%ports, KindTailDrop, 2)
		m.Publish(rec)
	}
	close(stop)
	if err := <-readerDone; err != nil {
		t.Fatal(err)
	}

	for p := 0; p < ports; p++ {
		for k := Kind(0); k < NumKinds; k++ {
			if m.Count(p, k) != rec.Count(p, k) {
				t.Fatalf("port %d kind %v: mirror %d != recorder %d", p, k, m.Count(p, k), rec.Count(p, k))
			}
		}
	}
	snap := m.Snapshot()
	if snap.Totals.Admits != rounds || snap.Totals.TailDrops != 2*rounds {
		t.Fatalf("snapshot totals = %+v", snap.Totals)
	}
}

type monotoneErr struct{ last, got uint64 }

func (e monotoneErr) Error() string { return "mirror total went backwards" }

func errNonMonotone(last, got uint64) error { return monotoneErr{last, got} }

func TestMirrorSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Publish with mismatched recorder did not panic")
		}
	}()
	NewMirror(2).Publish(NewRecorder(3, 0))
}
