// Package obs is the engine's zero-overhead observability layer:
// per-policy, per-port decision counters and an optional bounded event
// tracer that make admission decisions countable and traceable.
//
// The paper's claims are statements about *why* policies win — LQD
// evicting from the longest queue, BPD dropping the biggest packet,
// NHDT's thresholds adapting — and end-of-run Stats only show the
// aggregate outcome. A Recorder attached to a core.Switch (and to a
// faults.Injector) counts every admission, tail-drop, push-out (with
// the work and value it discarded), head-of-line transmission and
// fault-window activation, per port, in one flat pre-sized []uint64.
//
// The overhead contract (DESIGN.md §12): recording is branch-on-nil at
// every instrumentation site, so a run without a Recorder attached pays
// one predictable pointer compare per decision — 0 allocs/op and within
// noise of BENCH_baseline.json — and an attached Recorder allocates
// only at construction, never on the hot path.
package obs

// Kind indexes one decision-counter lane. The numeric values are the
// in-memory layout of Recorder's flat counter slab and the wire order
// of Snapshot rendering; they are append-only.
type Kind uint8

// The counter lanes. KindAdmit/KindTailDrop/KindPushOut partition the
// policy's decisions; the remaining lanes quantify their consequences.
const (
	// KindAdmit counts packets the policy admitted (plain accepts and
	// push-out admissions alike).
	KindAdmit Kind = iota
	// KindTailDrop counts packets rejected on arrival.
	KindTailDrop
	// KindPushOut counts evictions, attributed to the victim queue's
	// port (not the arriving packet's).
	KindPushOut
	// KindPushedOutWork accumulates the residual work discarded by
	// push-outs: the evicted tail's remaining cycles in the processing
	// model (including partially-processed head-of-line work when the
	// tail was also the head), 1 per eviction in the value model.
	KindPushedOutWork
	// KindPushedOutValue accumulates the intrinsic value discarded by
	// push-outs: the evicted minimum value in the value model, 1 per
	// eviction in the processing model.
	KindPushedOutValue
	// KindHOLTransmit counts head-of-line completions: packets fully
	// processed and transmitted through the port.
	KindHOLTransmit
	// KindFaultEvent counts fault-schedule window activations hitting
	// the port (switch-wide windows are attributed to port 0).
	KindFaultEvent

	// NumKinds is the number of counter lanes; it sizes the flat slab.
	NumKinds
)

// String names the lane for dumps and tables.
func (k Kind) String() string {
	switch k {
	case KindAdmit:
		return "admit"
	case KindTailDrop:
		return "drop"
	case KindPushOut:
		return "pushout"
	case KindPushedOutWork:
		return "pushout-work"
	case KindPushedOutValue:
		return "pushout-value"
	case KindHOLTransmit:
		return "transmit"
	case KindFaultEvent:
		return "fault"
	default:
		return "kind?"
	}
}

// Target is the capability interface of engine components that can
// record into a Recorder: core.Switch (decision counters) and
// faults.Injector (fault-event hits) implement it. Passing nil detaches
// the recorder, restoring the zero-overhead disabled state.
type Target interface {
	// SetRecorder attaches r (nil detaches).
	SetRecorder(r *Recorder)
}

// Options configures observability for a replay (see sim.Instance.Obs).
type Options struct {
	// TraceEvents, when positive, bounds the per-replay decision-event
	// ring buffer; zero disables tracing (counters only).
	TraceEvents int
}

// Recorder accumulates per-port decision counters in one flat pre-sized
// slab (port-major: port·NumKinds + kind) and optionally traces events
// into a bounded ring. It is owned by the caller that attaches it — one
// Recorder per policy replay — and is not safe for concurrent use.
type Recorder struct {
	ports  int
	counts []uint64
	tracer *Tracer
}

// NewRecorder builds a recorder for a switch with the given port count.
// traceCap > 0 additionally attaches a bounded event ring of that
// capacity; 0 records counters only.
func NewRecorder(ports, traceCap int) *Recorder {
	r := &Recorder{
		ports:  ports,
		counts: make([]uint64, ports*int(NumKinds)),
	}
	if traceCap > 0 {
		r.tracer = NewTracer(traceCap)
	}
	return r
}

// Ports returns the port count the recorder was sized for.
func (r *Recorder) Ports() int { return r.ports }

// Inc bumps one counter lane for one port.
//
//smb:hotpath
func (r *Recorder) Inc(port int, k Kind) {
	r.counts[port*int(NumKinds)+int(k)]++
}

// Add accumulates delta into one counter lane for one port.
//
//smb:hotpath
func (r *Recorder) Add(port int, k Kind, delta uint64) {
	r.counts[port*int(NumKinds)+int(k)] += delta
}

// Trace records one decision event into the ring when tracing is
// enabled; without a tracer it is a single nil compare.
//
//smb:hotpath
func (r *Recorder) Trace(slot int64, port int, k Kind, work, value int) {
	if r.tracer == nil {
		return
	}
	r.tracer.Record(Event{Slot: slot, Port: port, Kind: k, Work: work, Value: value})
}

// Tracing reports whether an event ring is attached. The engine's
// batched arrival phase consults it once per batch to decide whether
// decision events must be buffered for transactional replay (an
// overwriting ring cannot be rewound, so events are only delivered on
// commit — see core.ArriveBatch).
func (r *Recorder) Tracing() bool { return r.tracer != nil }

// SaveCounts copies the flat counter slab into dst, growing it as
// needed, and returns the (possibly reallocated) slice. Together with
// RestoreCounts it gives the engine's transactional batch path a
// counter checkpoint: allocation happens at most once per recorder
// lifetime because callers reuse the returned slice.
func (r *Recorder) SaveCounts(dst []uint64) []uint64 {
	if cap(dst) < len(r.counts) {
		dst = make([]uint64, len(r.counts))
	}
	dst = dst[:len(r.counts)]
	copy(dst, r.counts)
	return dst
}

// RestoreCounts overwrites the counter slab from a SaveCounts
// checkpoint taken on this recorder. It panics on a size mismatch,
// which indicates a checkpoint from a differently-sized recorder.
func (r *Recorder) RestoreCounts(src []uint64) {
	if len(src) != len(r.counts) {
		panic("obs: RestoreCounts checkpoint size mismatch")
	}
	copy(r.counts, src)
}

// Count returns one port's counter for lane k.
func (r *Recorder) Count(port int, k Kind) uint64 {
	return r.counts[port*int(NumKinds)+int(k)]
}

// Total sums lane k across all ports.
func (r *Recorder) Total(k Kind) uint64 {
	var t uint64
	for p := 0; p < r.ports; p++ {
		t += r.counts[p*int(NumKinds)+int(k)]
	}
	return t
}

// Reset zeroes every counter and rewinds the tracer, keeping the
// allocated slab so a recorder is reusable across replays.
func (r *Recorder) Reset() {
	for i := range r.counts {
		r.counts[i] = 0
	}
	if r.tracer != nil {
		r.tracer.Reset()
	}
}

// Snapshot renders the recorder into its JSON-serializable export form,
// including the traced events (chronological) when tracing is enabled.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{
		Ports:   r.ports,
		PerPort: make([]KindCounts, r.ports),
	}
	for p := 0; p < r.ports; p++ {
		s.PerPort[p] = r.kindCounts(p)
		s.Totals.Accumulate(s.PerPort[p])
	}
	if r.tracer != nil {
		s.Events = r.tracer.Events()
		s.DroppedEvents = r.tracer.Dropped()
	}
	return s
}

// kindCounts copies one port's flat lanes into the named struct.
func (r *Recorder) kindCounts(port int) KindCounts {
	base := port * int(NumKinds)
	return KindCounts{
		Admits:         r.counts[base+int(KindAdmit)],
		TailDrops:      r.counts[base+int(KindTailDrop)],
		PushOuts:       r.counts[base+int(KindPushOut)],
		PushedOutWork:  r.counts[base+int(KindPushedOutWork)],
		PushedOutValue: r.counts[base+int(KindPushedOutValue)],
		HOLTransmits:   r.counts[base+int(KindHOLTransmit)],
		FaultEvents:    r.counts[base+int(KindFaultEvent)],
	}
}

// KindCounts is one port's (or one policy's total) decision counters in
// named, JSON-friendly form.
type KindCounts struct {
	// Admits counts admitted packets (see KindAdmit).
	Admits uint64 `json:"admits"`
	// TailDrops counts rejected arrivals (see KindTailDrop).
	TailDrops uint64 `json:"tail_drops"`
	// PushOuts counts evictions (see KindPushOut).
	PushOuts uint64 `json:"push_outs"`
	// PushedOutWork is the residual work discarded by push-outs.
	PushedOutWork uint64 `json:"pushed_out_work"`
	// PushedOutValue is the intrinsic value discarded by push-outs.
	PushedOutValue uint64 `json:"pushed_out_value"`
	// HOLTransmits counts head-of-line completions.
	HOLTransmits uint64 `json:"hol_transmits"`
	// FaultEvents counts fault-window activations.
	FaultEvents uint64 `json:"fault_events"`
}

// Accumulate adds o into c lane by lane.
func (c *KindCounts) Accumulate(o KindCounts) {
	c.Admits += o.Admits
	c.TailDrops += o.TailDrops
	c.PushOuts += o.PushOuts
	c.PushedOutWork += o.PushedOutWork
	c.PushedOutValue += o.PushedOutValue
	c.HOLTransmits += o.HOLTransmits
	c.FaultEvents += o.FaultEvents
}

// Snapshot is the JSON-serializable export of one replay's observability
// data: per-port counters, their totals, and — when tracing was enabled
// — the ring's surviving events. It rides in sim.Result and the sweep
// checkpoint journal.
type Snapshot struct {
	// Ports is the port count the counters are indexed by.
	Ports int `json:"ports"`
	// PerPort holds port i's counters at index i.
	PerPort []KindCounts `json:"per_port"`
	// Totals sums PerPort lane by lane.
	Totals KindCounts `json:"totals"`
	// Events are the traced decision events in chronological order
	// (only the last ring-capacity events survive), empty when tracing
	// was disabled.
	Events []Event `json:"events,omitempty"`
	// DroppedEvents counts events the bounded ring overwrote.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Balanced reports whether the snapshot's decision bookkeeping closes on
// every port after a final drain: every admitted packet must either have
// been pushed out or transmitted (admits − push-outs − transmits == 0).
// It returns the first offending port, or -1 when balanced.
func (s *Snapshot) Balanced() int {
	for p := range s.PerPort {
		c := s.PerPort[p]
		if c.Admits != c.PushOuts+c.HOLTransmits {
			return p
		}
	}
	return -1
}
