package obs

import "sync/atomic"

// Mirror is an atomically readable copy of a Recorder's counter slab
// for cross-goroutine observation. The Recorder itself stays
// single-owner and lock-free on the admission hot path; the owning
// goroutine calls Publish at slot granularity (off the per-packet
// path) to copy the slab into the mirror with atomic stores, and any
// number of reader goroutines snapshot it with atomic loads.
//
// Reads are per-counter atomic, not slab-consistent: a reader may
// observe lane A from a newer publish than lane B. Every individual
// counter is monotone between resets, which is the guarantee live
// dashboards and expvar need; bit-exact cross-lane consistency comes
// from reading the Recorder itself once its owner has quiesced (the
// sharded runtime reads final results only after a drain barrier).
type Mirror struct {
	ports  int
	counts []uint64
}

// NewMirror builds a mirror for recorders sized to the given port
// count.
func NewMirror(ports int) *Mirror {
	return &Mirror{
		ports:  ports,
		counts: make([]uint64, ports*int(NumKinds)),
	}
}

// Ports returns the port count the mirror was sized for.
func (m *Mirror) Ports() int { return m.ports }

// Publish copies r's counter slab into the mirror with atomic stores.
// Only the recorder's owning goroutine may call it, and r must be
// sized to the same port count (it panics otherwise).
func (m *Mirror) Publish(r *Recorder) {
	if len(r.counts) != len(m.counts) {
		panic("obs: Mirror.Publish recorder size mismatch")
	}
	for i, v := range r.counts {
		atomic.StoreUint64(&m.counts[i], v)
	}
}

// Count returns one port's mirrored counter for lane k.
func (m *Mirror) Count(port int, k Kind) uint64 {
	return atomic.LoadUint64(&m.counts[port*int(NumKinds)+int(k)])
}

// Total sums lane k across all ports from the mirror.
func (m *Mirror) Total(k Kind) uint64 {
	var t uint64
	for p := 0; p < m.ports; p++ {
		t += atomic.LoadUint64(&m.counts[p*int(NumKinds)+int(k)])
	}
	return t
}

// Snapshot renders the mirrored counters into the JSON-serializable
// export form. Events are never mirrored (the trace ring stays with
// the recorder's owner), so the snapshot carries counters only.
func (m *Mirror) Snapshot() *Snapshot {
	s := &Snapshot{
		Ports:   m.ports,
		PerPort: make([]KindCounts, m.ports),
	}
	for p := 0; p < m.ports; p++ {
		base := p * int(NumKinds)
		s.PerPort[p] = KindCounts{
			Admits:         atomic.LoadUint64(&m.counts[base+int(KindAdmit)]),
			TailDrops:      atomic.LoadUint64(&m.counts[base+int(KindTailDrop)]),
			PushOuts:       atomic.LoadUint64(&m.counts[base+int(KindPushOut)]),
			PushedOutWork:  atomic.LoadUint64(&m.counts[base+int(KindPushedOutWork)]),
			PushedOutValue: atomic.LoadUint64(&m.counts[base+int(KindPushedOutValue)]),
			HOLTransmits:   atomic.LoadUint64(&m.counts[base+int(KindHOLTransmit)]),
			FaultEvents:    atomic.LoadUint64(&m.counts[base+int(KindFaultEvent)]),
		}
		s.Totals.Accumulate(s.PerPort[p])
	}
	return s
}
