package obs

import (
	"bufio"
	"fmt"
	"io"
)

// Event is one traced decision: what the policy did to which port's
// queue at which slot, and the work/value of the packet it acted on
// (the arriving packet for admits and drops, the evicted packet for
// push-outs).
type Event struct {
	// Slot is the simulation slot of the decision.
	Slot int64 `json:"slot"`
	// Port is the affected queue's port.
	Port int `json:"port"`
	// Kind is the decision lane (admit, drop, pushout, fault).
	Kind Kind `json:"kind"`
	// Work is the packet's required work (processing model; 1 in the
	// value model).
	Work int `json:"work"`
	// Value is the packet's intrinsic value (value model; 1 in the
	// processing model).
	Value int `json:"value"`
}

// Tracer is a bounded ring buffer of decision events: the last cap
// events survive, older ones are overwritten. The ring is pre-sized at
// construction so recording never allocates.
type Tracer struct {
	buf  []Event
	next int    // ring write index
	n    uint64 // total events ever recorded
}

// NewTracer builds a tracer keeping the last cap events (cap >= 1).
func NewTracer(cap int) *Tracer {
	if cap < 1 {
		cap = 1
	}
	return &Tracer{buf: make([]Event, cap)}
}

// Cap returns the ring capacity.
func (t *Tracer) Cap() int { return len(t.buf) }

// Record appends one event, overwriting the oldest when full.
//
//smb:hotpath
func (t *Tracer) Record(ev Event) {
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.n++
}

// Len returns the number of events currently held (at most Cap).
func (t *Tracer) Len() int {
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t.n < uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Reset empties the ring, keeping its capacity.
func (t *Tracer) Reset() {
	t.next = 0
	t.n = 0
}

// Events returns the surviving events oldest first.
func (t *Tracer) Events() []Event {
	n := t.Len()
	out := make([]Event, 0, n)
	if t.n > uint64(len(t.buf)) {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
		return out
	}
	return append(out, t.buf[:n]...)
}

// DumpEvents writes events as a self-describing text block — one
// header line followed by one whitespace-separated record per event —
// in the same line-oriented idiom as the traffic package's text trace
// writer, so dumps diff cleanly and grep/awk apply:
//
//	# smbm-obs-trace v1 label=<label> events=<kept> dropped=<overwritten>
//	<slot> <port> <kind> <work> <value>
//
// The writer is buffered internally; callers pass any io.Writer.
func DumpEvents(w io.Writer, label string, events []Event, dropped uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# smbm-obs-trace v1 label=%s events=%d dropped=%d\n",
		label, len(events), dropped); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(bw, "%d %d %s %d %d\n",
			ev.Slot, ev.Port, ev.Kind, ev.Work, ev.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}
