package obs

import (
	"strings"
	"testing"
)

func TestRecorderCountsPortMajor(t *testing.T) {
	r := NewRecorder(3, 0)
	r.Inc(0, KindAdmit)
	r.Inc(2, KindAdmit)
	r.Inc(2, KindTailDrop)
	r.Add(1, KindPushedOutWork, 7)
	r.Inc(1, KindPushOut)

	if got := r.Count(0, KindAdmit); got != 1 {
		t.Errorf("port 0 admits = %d, want 1", got)
	}
	if got := r.Count(2, KindAdmit); got != 1 {
		t.Errorf("port 2 admits = %d, want 1", got)
	}
	if got := r.Total(KindAdmit); got != 2 {
		t.Errorf("total admits = %d, want 2", got)
	}
	if got := r.Count(1, KindPushedOutWork); got != 7 {
		t.Errorf("port 1 pushed-out work = %d, want 7", got)
	}
	// Lanes are independent: port 1's push-out did not leak elsewhere.
	if got := r.Count(1, KindAdmit); got != 0 {
		t.Errorf("port 1 admits = %d, want 0", got)
	}

	s := r.Snapshot()
	if s.Totals.Admits != 2 || s.Totals.TailDrops != 1 || s.Totals.PushOuts != 1 || s.Totals.PushedOutWork != 7 {
		t.Errorf("snapshot totals %+v", s.Totals)
	}
	if len(s.PerPort) != 3 || s.PerPort[2].TailDrops != 1 {
		t.Errorf("snapshot per-port %+v", s.PerPort)
	}

	r.Reset()
	if got := r.Total(KindAdmit); got != 0 {
		t.Errorf("after Reset total admits = %d, want 0", got)
	}
}

func TestSnapshotBalanced(t *testing.T) {
	r := NewRecorder(2, 0)
	r.Inc(0, KindAdmit)
	r.Inc(0, KindHOLTransmit)
	r.Inc(1, KindAdmit)
	r.Inc(1, KindAdmit)
	r.Inc(1, KindPushOut)
	r.Inc(1, KindHOLTransmit)
	if p := r.Snapshot().Balanced(); p != -1 {
		t.Errorf("balanced snapshot reported port %d", p)
	}
	r.Inc(1, KindAdmit) // admitted but never transmitted or pushed out
	if p := r.Snapshot().Balanced(); p != 1 {
		t.Errorf("unbalanced port = %d, want 1", p)
	}
}

func TestTracerRingWrapsOldestFirst(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(Event{Slot: int64(i), Port: i, Kind: KindAdmit, Work: 1, Value: 1})
	}
	if tr.Len() != 3 {
		t.Fatalf("len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	for i, want := range []int64{2, 3, 4} {
		if evs[i].Slot != want {
			t.Errorf("event %d slot = %d, want %d", i, evs[i].Slot, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Errorf("after Reset len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(Event{Slot: 1})
	tr.Record(Event{Slot: 2})
	evs := tr.Events()
	if len(evs) != 2 || evs[0].Slot != 1 || evs[1].Slot != 2 {
		t.Errorf("events %+v", evs)
	}
}

func TestRecorderTraceRoutesThroughRing(t *testing.T) {
	r := NewRecorder(2, 4)
	r.Trace(3, 1, KindPushOut, 2, 5)
	s := r.Snapshot()
	if len(s.Events) != 1 {
		t.Fatalf("events %+v", s.Events)
	}
	ev := s.Events[0]
	if ev.Slot != 3 || ev.Port != 1 || ev.Kind != KindPushOut || ev.Work != 2 || ev.Value != 5 {
		t.Errorf("event %+v", ev)
	}
	// Without a tracer, Trace is a no-op rather than a panic.
	r0 := NewRecorder(2, 0)
	r0.Trace(1, 0, KindAdmit, 1, 1)
	if s := r0.Snapshot(); len(s.Events) != 0 || s.DroppedEvents != 0 {
		t.Errorf("untraced snapshot %+v", s)
	}
}

func TestDumpEventsFormat(t *testing.T) {
	var b strings.Builder
	evs := []Event{
		{Slot: 0, Port: 1, Kind: KindAdmit, Work: 2, Value: 1},
		{Slot: 4, Port: 0, Kind: KindTailDrop, Work: 1, Value: 3},
	}
	if err := DumpEvents(&b, "LQD", evs, 7); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# smbm-obs-trace v1 label=LQD events=2 dropped=7\n0 1 admit 2 1\n4 0 drop 1 3\n"
	if got != want {
		t.Errorf("dump:\n%q\nwant:\n%q", got, want)
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		if s := k.String(); s == "kind?" || s == "" {
			t.Errorf("Kind(%d) has no name", k)
		}
	}
}

// BenchmarkRecorderInc pins the recording cost: a handful of ns, no
// allocations — the attached-recorder side of the overhead contract.
func BenchmarkRecorderInc(b *testing.B) {
	r := NewRecorder(16, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Inc(i&15, KindAdmit)
	}
}

// BenchmarkTracerRecord pins the ring write cost.
func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(Event{Slot: int64(i), Port: i & 15, Kind: KindAdmit, Work: 1, Value: 1})
	}
}
