package shard

import (
	"errors"
	"fmt"
	"sync/atomic"

	"smbm/internal/core"
	"smbm/internal/pkt"
	"smbm/internal/traffic"
)

// Partition is one shard's contiguous slice [Lo,Hi) of the global port
// space. Contiguity preserves the engine's non-decreasing PortWork
// invariant under slicing, which is what lets each shard run an
// unmodified core.Switch over its remapped local ports.
type Partition struct {
	// Lo is the first global port owned (inclusive).
	Lo int
	// Hi is one past the last global port owned.
	Hi int
}

// Ports returns the number of ports in the partition.
func (p Partition) Ports() int { return p.Hi - p.Lo }

// PartitionPorts splits n global ports across shards as evenly as
// possible, remainders to the lowest shards, contiguously in port
// order.
func PartitionPorts(n, shards int) []Partition {
	parts := make([]Partition, shards)
	base, rem := n/shards, n%shards
	lo := 0
	for i := range parts {
		size := base
		if i < rem {
			size++
		}
		parts[i] = Partition{Lo: lo, Hi: lo + size}
		lo += size
	}
	return parts
}

// ShardConfig derives one shard's engine configuration from the global
// one: the partition's ports, the matching PortWork slice, and a
// proportional share of the shared buffer (remainders to the lowest
// shards, so shares sum exactly to the global B). Because B >= n
// globally, every shard's share stays >= its port count, preserving
// the engine's B >= n precondition.
func ShardConfig(cfg core.Config, parts []Partition, i int) core.Config {
	out := cfg
	p := parts[i]
	out.Ports = p.Ports()
	if cfg.PortWork != nil {
		out.PortWork = append([]int(nil), cfg.PortWork[p.Lo:p.Hi]...)
	}
	// Proportional buffer split with left-to-right remainder: compute
	// this shard's share as the difference of prefix shares so the
	// shares sum exactly to cfg.Buffer.
	prefix := func(ports int) int { return cfg.Buffer * ports / cfg.Ports }
	out.Buffer = prefix(p.Hi) - prefix(p.Lo)
	return out
}

// FilterTrace extracts partition p's arrivals from a global trace,
// remapping ports to shard-local indices — the oracle-side counterpart
// of Ingest's routing. Replaying the filtered trace through the
// single-threaded harness over the shard's configuration must
// reproduce the shard's Result bit-identically; that differential is
// the runtime's correctness argument.
func FilterTrace(tr traffic.Trace, p Partition) traffic.Trace {
	out := make(traffic.Trace, len(tr))
	for t, burst := range tr {
		var local []pkt.Packet
		for _, pk := range burst {
			if pk.Port < p.Lo || pk.Port >= p.Hi {
				continue
			}
			pk.Port -= p.Lo
			local = append(local, pk)
		}
		out[t] = local
	}
	return out
}

// Options tunes a Runtime beyond the engine configuration.
type Options struct {
	// RingCap is each shard's ingress-ring capacity in entries
	// (rounded up to a power of two; default 1<<14).
	RingCap int
	// StagingBudget is the shared staging-slab budget in packets
	// (default four times the global buffer, floored at one maximum
	// slab per shard).
	StagingBudget int64
	// PoolHiWater is the per-pool free-capacity watermark above which
	// the manager shrinks (default Pool's own).
	PoolHiWater int64
}

// Runtime is the sharded concurrent switch: N shards, each owning a
// contiguous port partition and stepping a private deterministic
// core.Switch, fed through per-shard SPSC rings, with staging memory
// drawn from one shared atomic Budget and returned by a pool-manager
// goroutine off the hot path.
//
// Producer-side methods (BeginStream, Ingest, Advance, Finish,
// EndStream, SetPolicy, Stop) must be called from one goroutine at a
// time — the stream driver. For sharded producers (one goroutine per
// shard, as in the selftest loadgen), use Feeder, which preserves the
// per-ring SPSC discipline.
type Runtime struct {
	cfg    core.Config
	parts  []Partition
	owner  []int32
	budget *Budget
	pools  []*Pool
	shards []*Shard

	started   bool
	stopped   bool
	streaming atomic.Bool

	kick        chan struct{}
	managerStop chan struct{}
	managerDone chan struct{}
}

// NewRuntime builds a runtime of the given shard count over the global
// configuration, constructing each shard's switch with its own policy
// instance from factory. The configuration must satisfy the engine's
// own invariants plus the ring encoding's: MaxLabel at most 255 and
// fewer than CtlPort ports per shard.
func NewRuntime(cfg core.Config, shards int, factory func() core.Policy, opt Options) (*Runtime, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if shards > cfg.Ports {
		return nil, fmt.Errorf("shard: %d shards exceed %d ports", shards, cfg.Ports)
	}
	if cfg.MaxLabel > 255 {
		return nil, fmt.Errorf("shard: MaxLabel %d exceeds the ring encoding's 255", cfg.MaxLabel)
	}
	if factory == nil {
		return nil, errors.New("shard: nil policy factory")
	}
	ringCap := opt.RingCap
	if ringCap <= 0 {
		ringCap = 1 << 14
	}
	budgetCap := opt.StagingBudget
	if budgetCap <= 0 {
		budgetCap = 4 * int64(cfg.Buffer)
		if floor := int64(shards) * minSlab << (poolClasses - 1); budgetCap < floor {
			budgetCap = floor
		}
	}
	rt := &Runtime{
		cfg:         cfg,
		parts:       PartitionPorts(cfg.Ports, shards),
		owner:       make([]int32, cfg.Ports),
		budget:      NewBudget(budgetCap),
		kick:        make(chan struct{}, 1),
		managerStop: make(chan struct{}),
		managerDone: make(chan struct{}),
	}
	for s, p := range rt.parts {
		if p.Ports() >= CtlPort {
			return nil, fmt.Errorf("shard: shard %d owns %d ports, exceeding the ring encoding's %d", s, p.Ports(), CtlPort-1)
		}
		for g := p.Lo; g < p.Hi; g++ {
			rt.owner[g] = int32(s)
		}
		pool := NewPool(rt.budget, opt.PoolHiWater)
		pool.kick = rt.kick
		pol := factory()
		if pol == nil {
			return nil, errors.New("shard: policy factory returned nil")
		}
		sh, err := newShard(s, ShardConfig(cfg, rt.parts, s), pol, ringCap, pool)
		if err != nil {
			return nil, err
		}
		rt.pools = append(rt.pools, pool)
		rt.shards = append(rt.shards, sh)
	}
	return rt, nil
}

// Config returns the global engine configuration.
func (rt *Runtime) Config() core.Config { return rt.cfg }

// Shards returns the shard count.
func (rt *Runtime) Shards() int { return len(rt.shards) }

// Partition returns shard i's global port range.
func (rt *Runtime) Partition(i int) Partition { return rt.parts[i] }

// ShardConfig returns shard i's partition-local engine configuration.
func (rt *Runtime) ShardConfig(i int) core.Config { return rt.shards[i].cfg }

// Budget returns the shared staging budget, for observability.
func (rt *Runtime) Budget() *Budget { return rt.budget }

// Shard returns shard i, for its read-only observability surfaces
// (Mirror, Live).
func (rt *Runtime) Shard(i int) *Shard { return rt.shards[i] }

// LiveTotal aggregates every shard's live gauge.
func (rt *Runtime) LiveTotal() LiveSnapshot {
	var total LiveSnapshot
	for _, sh := range rt.shards {
		s := sh.live.Snapshot()
		total.Add(s)
	}
	return total
}

// Start launches the shard goroutines and the pool manager. It must be
// called exactly once before any stream.
func (rt *Runtime) Start() {
	if rt.started {
		panic("shard: Runtime started twice")
	}
	rt.started = true
	for _, sh := range rt.shards {
		go sh.run()
	}
	go rt.manage()
}

// manage is the pool-manager goroutine: it waits for shrink requests
// (posted by pools crossing their free-capacity watermark, and on
// stream boundaries) and returns surplus slabs to the shared budget —
// growth and shrink both stay off the admission hot path.
func (rt *Runtime) manage() {
	defer close(rt.managerDone)
	for {
		select {
		case <-rt.managerStop:
			return
		case <-rt.kick:
			for _, p := range rt.pools {
				if p.NeedShrink() {
					p.Shrink()
				}
			}
		}
	}
}

// BeginStream arms the runtime for one arrival stream, resetting every
// shard to its initial empty state. It fails if a stream is already
// active. Each stream is an independent run: results and counters
// start from zero, while the engine's internal batch serials and memo
// epochs stay monotone across streams by design (see core.Reset).
func (rt *Runtime) BeginStream() error {
	if !rt.started || rt.stopped {
		return errors.New("shard: runtime not running")
	}
	if !rt.streaming.CompareAndSwap(false, true) {
		return errors.New("shard: a stream is already active")
	}
	for _, sh := range rt.shards {
		sh.reset()
	}
	return nil
}

// EndStream disarms the runtime after a stream's drain barrier.
func (rt *Runtime) EndStream() {
	rt.streaming.Store(false)
	select {
	case rt.kick <- struct{}{}:
	default:
	}
}

// Streaming reports whether a stream is active.
func (rt *Runtime) Streaming() bool { return rt.streaming.Load() }

// Ingest routes one global-port arrival into its owner shard's ring,
// blocking only when that ring is full (back-pressure). Slot numbers
// must be non-decreasing per stream and below 2^32.
func (rt *Runtime) Ingest(slot int64, p pkt.Packet) error {
	if uint64(slot) >= 1<<32 {
		return fmt.Errorf("shard: slot %d exceeds the ring encoding's 32 bits", slot)
	}
	if err := p.Validate(rt.cfg.Ports, rt.cfg.MaxLabel); err != nil {
		return err
	}
	s := rt.owner[p.Port]
	local := p
	local.Port = p.Port - rt.parts[s].Lo
	rt.shards[s].ring.Push(Arrival(slot, local))
	return nil
}

// Advance tells every shard to step all slots strictly below upto, so
// shards with no recent arrivals keep pace and their live gauges stay
// fresh.
func (rt *Runtime) Advance(upto int64) {
	for _, sh := range rt.shards {
		sh.ring.Push(Control(OpAdvance, upto))
	}
}

// Finish is the stream's drain barrier: every shard steps through slot
// upto-1, drains its switch empty, and publishes; Finish then collects
// the bit-exact per-shard results and ends the stream. The error joins
// every shard's failure (nil when all succeeded); results are returned
// even on error, for diagnosis.
func (rt *Runtime) Finish(upto int64) ([]Result, error) {
	if !rt.streaming.Load() {
		return nil, errors.New("shard: Finish without an active stream")
	}
	for _, sh := range rt.shards {
		sh.ring.Push(Control(OpDrain, upto))
	}
	var errs []error
	results := make([]Result, len(rt.shards))
	for i, sh := range rt.shards {
		if err := <-sh.ack; err != nil {
			errs = append(errs, err)
		}
		results[i] = sh.result()
	}
	rt.EndStream()
	return results, errors.Join(errs...)
}

// SetPolicy swaps every shard's policy between streams, building one
// instance per shard from factory. It fails while a stream is active
// or when the engine rejects the swap (a non-empty buffer, which
// cannot happen after a Finish barrier).
func (rt *Runtime) SetPolicy(factory func() core.Policy) error {
	if rt.streaming.Load() {
		return errors.New("shard: cannot swap policy during a stream")
	}
	if factory == nil {
		return errors.New("shard: nil policy factory")
	}
	for _, sh := range rt.shards {
		pol := factory()
		if pol == nil {
			return errors.New("shard: policy factory returned nil")
		}
		if err := sh.sw.SetPolicy(pol); err != nil {
			return fmt.Errorf("shard %d: %w", sh.id, err)
		}
	}
	return nil
}

// PolicyName returns the active policy's name.
func (rt *Runtime) PolicyName() string { return rt.shards[0].sw.Name() }

// Stop terminates the shard goroutines and the pool manager. The
// runtime cannot be restarted.
func (rt *Runtime) Stop() {
	if !rt.started || rt.stopped {
		return
	}
	rt.stopped = true
	for _, sh := range rt.shards {
		sh.ring.Push(Control(OpStop, 0))
	}
	for _, sh := range rt.shards {
		<-sh.done
	}
	close(rt.managerStop)
	<-rt.managerDone
}

// Feeder is one shard's producer handle for sharded loadgen: exactly
// one goroutine may drive each feeder, preserving the ring's SPSC
// discipline while different shards' feeders run concurrently.
// Arrivals are shard-local (ports already remapped into [0,
// Partition.Ports())).
type Feeder struct {
	sh *Shard
}

// Feeder returns shard i's producer handle.
func (rt *Runtime) Feeder(i int) Feeder { return Feeder{sh: rt.shards[i]} }

// Arrive pushes one shard-local arrival. The packet must already be
// valid for the shard's configuration; slots must be non-decreasing
// and below 2^32.
func (f Feeder) Arrive(slot int64, p pkt.Packet) {
	f.sh.ring.Push(Arrival(slot, p))
}

// Advance tells the shard to step all slots strictly below upto.
func (f Feeder) Advance(upto int64) {
	f.sh.ring.Push(Control(OpAdvance, upto))
}

// Finish is the per-shard drain barrier: it advances through upto-1,
// drains, waits for the shard's ack, and returns the bit-exact result.
// The caller owns ending the stream via EndStream once every feeder
// finished.
func (f Feeder) Finish(upto int64) (Result, error) {
	f.sh.ring.Push(Control(OpDrain, upto))
	err := <-f.sh.ack
	return f.sh.result(), err
}
