package shard

import "testing"

func TestBudgetAcquireRelease(t *testing.T) {
	b := NewBudget(100)
	if b.Cap() != 100 || b.Free() != 100 {
		t.Fatalf("fresh budget cap=%d free=%d", b.Cap(), b.Free())
	}
	if !b.TryAcquire(60) {
		t.Fatalf("acquire 60 of 100 failed")
	}
	if b.TryAcquire(50) {
		t.Fatalf("acquire 50 with 40 free succeeded")
	}
	b.Release(60)
	if b.Free() != 100 {
		t.Fatalf("free = %d after release, want 100", b.Free())
	}
}

func TestPoolGetPutReuse(t *testing.T) {
	b := NewBudget(1 << 20)
	p := NewPool(b, 0)

	s := p.Get(10)
	if cap(s) != minSlab {
		t.Fatalf("small demand slab cap = %d, want %d", cap(s), minSlab)
	}
	if got := b.Cap() - b.Free(); got != minSlab {
		t.Fatalf("budget drawn = %d, want %d", got, minSlab)
	}
	p.Put(s)
	s2 := p.Get(10)
	if got := b.Cap() - b.Free(); got != minSlab {
		t.Fatalf("budget drawn after reuse = %d, want %d (no new draw)", got, minSlab)
	}
	p.Put(s2)

	big := p.Get(3 * minSlab)
	if cap(big) != 4*minSlab {
		t.Fatalf("size-class cap = %d, want %d", cap(big), 4*minSlab)
	}
	p.Put(big)
}

func TestPoolShrinkReleasesBudget(t *testing.T) {
	b := NewBudget(1 << 20)
	p := NewPool(b, minSlab) // tiny watermark: one slab of free capacity allowed

	s1, s2, s3 := p.Get(1), p.Get(1), p.Get(1)
	p.Put(s1)
	p.Put(s2)
	p.Put(s3)
	if !p.NeedShrink() {
		t.Fatalf("pool above watermark did not request a shrink")
	}
	released := p.Shrink()
	if released != 2*minSlab {
		t.Fatalf("shrink released %d, want %d", released, 2*minSlab)
	}
	if p.FreePackets() != minSlab {
		t.Fatalf("free capacity after shrink = %d, want %d", p.FreePackets(), minSlab)
	}
	if got := b.Cap() - b.Free(); got != p.Held() {
		t.Fatalf("budget drawn %d != pool held %d", got, p.Held())
	}
}

func TestPoolEmergencyWhenBudgetExhausted(t *testing.T) {
	b := NewBudget(minSlab) // room for exactly one small slab
	p := NewPool(b, 0)

	s1 := p.Get(1)
	// Budget dry and nothing free to reclaim: Get must still make
	// progress, counting an emergency instead of stalling the shard.
	s2 := p.Get(1)
	if s2 == nil || cap(s2) != minSlab {
		t.Fatalf("emergency Get returned cap %d", cap(s2))
	}
	if b.Emergencies() != 1 {
		t.Fatalf("emergencies = %d, want 1", b.Emergencies())
	}
	// With a free slab available, reclaim satisfies the retry without
	// a second emergency.
	p.Put(s1)
	s3 := p.Get(1)
	if b.Emergencies() != 1 {
		t.Fatalf("emergencies after reclaim path = %d, want 1", b.Emergencies())
	}
	p.Put(s2)
	p.Put(s3)
}
