// Package shard is the concurrent shell around the deterministic
// engine: it partitions a switch's output ports across N shards, each
// of which owns a private core.Switch and steps it single-threaded,
// fed through a lock-free single-producer/single-consumer ingress
// ring. Concurrency lives entirely in this package (and in the daemon
// wrapping it); the engine packages behind the concfence lint remain
// goroutine-free, which is what keeps the sharded runtime auditable:
// every shard's slot sequence is bit-identical to a single-threaded
// sim.RunTrace replay of the same traffic partition, so the
// deterministic engine doubles as the differential oracle for the
// concurrent runtime.
//
// The package has three layers:
//
//   - Ring: the SPSC ingress ring carrying packed 8-byte arrival and
//     control entries between exactly one producer goroutine and one
//     shard goroutine;
//   - Budget/Pool: shared atomic staging-buffer accounting and the
//     per-shard packet-slab pools grown and shrunk off the hot path;
//   - Shard/Runtime: the shard event loop around core.Switch and the
//     port-partitioned runtime that routes arrivals, advances slots,
//     drains, and collects per-shard results.
package shard

import (
	"runtime"
	"sync/atomic"

	"smbm/internal/pkt"
)

// Entry is one packed ring element: either an arrival (slot, local
// port, work, value) or a control opcode. The layout mirrors the
// traffic binary-framing record — slot in the high 32 bits, then a
// 16-bit port and one byte each of work and value — so a stream
// record converts to an entry with shifts only:
//
//	bits 63..32  slot  (uint32)
//	bits 31..16  port  (uint16; CtlPort marks a control entry)
//	bits 15..8   work  (uint8; control entries carry the opcode here)
//	bits  7..0   value (uint8)
type Entry uint64

// CtlPort is the reserved port number marking control entries. Real
// shard-local ports must stay below it; Runtime enforces the bound.
const CtlPort = 0xFFFF

// Control opcodes, carried in a control entry's work byte.
const (
	// OpAdvance tells the shard to step every slot strictly below the
	// entry's slot field, so its slot counter reaches that value.
	OpAdvance = 1
	// OpDrain tells the shard to flush pending arrivals, drain its
	// switch empty, publish results, and acknowledge on its ack
	// channel. The entry's slot field is the advance target applied
	// first (equivalent to a preceding OpAdvance).
	OpDrain = 2
	// OpStop tells the shard to exit its event loop. The shard closes
	// its done channel on the way out.
	OpStop = 3
)

// Arrival packs an arrival entry for a shard-local port.
func Arrival(slot int64, p pkt.Packet) Entry {
	return Entry(uint64(uint32(slot))<<32 |
		uint64(uint16(p.Port))<<16 |
		uint64(uint8(p.Work))<<8 |
		uint64(uint8(p.Value)))
}

// Control packs a control entry with the given opcode and slot field.
func Control(op uint8, slot int64) Entry {
	return Entry(uint64(uint32(slot))<<32 | uint64(CtlPort)<<16 | uint64(op)<<8)
}

// Slot returns the entry's slot field.
func (e Entry) Slot() int64 { return int64(uint32(e >> 32)) }

// Port returns the entry's port field (CtlPort for control entries).
func (e Entry) Port() int { return int(uint16(e >> 16)) }

// Op returns the control opcode for control entries; for arrivals the
// same byte is the packet's work label.
func (e Entry) Op() uint8 { return uint8(e >> 8) }

// IsControl reports whether the entry is a control entry.
func (e Entry) IsControl() bool { return e.Port() == CtlPort }

// Packet unpacks an arrival entry's packet (shard-local port).
func (e Entry) Packet() pkt.Packet {
	return pkt.Packet{
		Port:  e.Port(),
		Work:  int(uint8(e >> 8)),
		Value: int(uint8(e)),
	}
}

// spinBudget is how many failed polls a ring side tolerates (yielding
// the processor between attempts) before parking on its wake channel.
// Parking keeps idle shards and back-pressured producers off the CPU —
// a long-running daemon must not spin while no stream is active.
const spinBudget = 128

// pad keeps the producer- and consumer-owned ring fields on separate
// cache lines so head and tail updates do not false-share.
type pad [64]byte

// Ring is a lock-free single-producer/single-consumer ring of packed
// entries. Exactly one goroutine may call the producer side (TryPush,
// Push) and exactly one the consumer side (TryPop, Pop); the two may
// differ. Both sides are wait-free while the ring is neither full nor
// empty and park on a wake channel otherwise, so an idle ring costs no
// CPU. The capacity is rounded up to a power of two.
//
// Memory ordering: the producer publishes buf[tail&mask] before its
// atomic tail store, and the consumer's atomic tail load therefore
// observes the element write (release/acquire pairing per the Go
// memory model); symmetrically for head on the reuse path.
type Ring struct {
	_    pad
	buf  []Entry
	mask uint64
	_    pad
	// head is the consumer cursor: the next index to pop.
	head atomic.Uint64
	// consumer parking state: the consumer sets consParked before
	// re-checking emptiness, and the producer hands it a token after
	// every push that observes the flag.
	consParked atomic.Bool
	consWake   chan struct{}
	_          pad
	// tail is the producer cursor: the next index to fill.
	tail atomic.Uint64
	// producer parking state, mirror-image of the consumer's.
	prodParked atomic.Bool
	prodWake   chan struct{}
	_          pad
}

// NewRing builds a ring with at least the given capacity (rounded up
// to a power of two, minimum 2).
func NewRing(capacity int) *Ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &Ring{
		buf:      make([]Entry, n),
		mask:     uint64(n - 1),
		consWake: make(chan struct{}, 1),
		prodWake: make(chan struct{}, 1),
	}
}

// Cap returns the ring's capacity in entries.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of entries currently buffered. It is exact
// when called from either of the ring's two goroutines and a snapshot
// otherwise.
func (r *Ring) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// TryPush appends e and reports success, failing when the ring is
// full. Producer side only.
func (r *Ring) TryPush(e Entry) bool {
	t := r.tail.Load()
	if t-r.head.Load() >= uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = e
	r.tail.Store(t + 1)
	if r.consParked.Load() {
		r.consParked.Store(false)
		select {
		case r.consWake <- struct{}{}:
		default:
		}
	}
	return true
}

// Push appends e, spinning briefly and then parking while the ring is
// full. Producer side only.
func (r *Ring) Push(e Entry) {
	for spins := 0; ; spins++ {
		if r.TryPush(e) {
			return
		}
		if spins < spinBudget {
			runtime.Gosched()
			continue
		}
		// Park: set the flag, then re-check fullness so a pop that
		// raced ahead of the flag store cannot strand us. A stale
		// token in prodWake only costs one spurious wakeup.
		r.prodParked.Store(true)
		if r.tail.Load()-r.head.Load() < uint64(len(r.buf)) {
			r.prodParked.Store(false)
			spins = 0
			continue
		}
		<-r.prodWake
		spins = 0
	}
}

// TryPop removes and returns the oldest entry, reporting failure when
// the ring is empty. Consumer side only.
func (r *Ring) TryPop() (Entry, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return 0, false
	}
	e := r.buf[h&r.mask]
	r.head.Store(h + 1)
	if r.prodParked.Load() {
		r.prodParked.Store(false)
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
	return e, true
}

// Pop removes and returns the oldest entry, spinning briefly and then
// parking while the ring is empty. Consumer side only.
func (r *Ring) Pop() Entry {
	for spins := 0; ; spins++ {
		if e, ok := r.TryPop(); ok {
			return e
		}
		if spins < spinBudget {
			runtime.Gosched()
			continue
		}
		r.consParked.Store(true)
		if r.head.Load() != r.tail.Load() {
			r.consParked.Store(false)
			spins = 0
			continue
		}
		<-r.consWake
		spins = 0
	}
}
