package shard

import (
	"fmt"
	"sync/atomic"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/pkt"
)

// drainCeiling is the absolute per-drain slot cap, matching the sim
// harness's DefaultDrainMax: any correct switch empties in at most
// B·MaxLabel slots, so hitting the ceiling means a wedged shard, not a
// slow one. The bound only turns a hang into an error — it can never
// change a correct drain's outcome, so it does not affect oracle
// bit-identity.
const drainCeiling = 1 << 20

// drainSlack pads the configuration-derived drain bound, mirroring the
// sim harness's slack for boundary effects.
const drainSlack = 64

// drainBound returns the drain-slot budget for one shard's
// configuration: B·MaxLabel plus slack, under the absolute ceiling.
func drainBound(cfg core.Config) int {
	b := cfg.Buffer * cfg.MaxLabel
	if cfg.Buffer > 0 && cfg.MaxLabel > 0 && b/cfg.Buffer != cfg.MaxLabel {
		return drainCeiling
	}
	if b <= 0 || b > drainCeiling-drainSlack {
		return drainCeiling
	}
	return b + drainSlack
}

// Live is a shard's atomically readable progress gauge, published by
// the shard goroutine at slot granularity and safe to read from any
// goroutine. It is the coarse companion of the per-port obs.Mirror:
// enough for expvar and dashboards, while bit-exact results come from
// Result after a drain barrier.
type Live struct {
	arrived, accepted, dropped, pushedOut atomic.Int64
	transmitted, transmittedValue, slots  atomic.Int64
	occupancy                             atomic.Int64
}

// LiveSnapshot is one consistent-enough read of a Live gauge: each
// field is individually atomic, monotone between stream resets except
// Occupancy.
type LiveSnapshot struct {
	// Arrived counts packets offered to the shard's policy.
	Arrived int64 `json:"arrived"`
	// Accepted counts admissions.
	Accepted int64 `json:"accepted"`
	// Dropped counts rejections on arrival.
	Dropped int64 `json:"dropped"`
	// PushedOut counts push-out evictions.
	PushedOut int64 `json:"pushed_out"`
	// Transmitted counts completed packets.
	Transmitted int64 `json:"transmitted"`
	// TransmittedValue is the delivered intrinsic value.
	TransmittedValue int64 `json:"transmitted_value"`
	// Slots counts completed time slots, drains included.
	Slots int64 `json:"slots"`
	// Occupancy is the buffered-packet gauge at the last publish.
	Occupancy int64 `json:"occupancy"`
}

// publish stores one stats snapshot; shard goroutine only.
func (l *Live) publish(s core.Stats, occ int) {
	l.arrived.Store(s.Arrived)
	l.accepted.Store(s.Accepted)
	l.dropped.Store(s.Dropped)
	l.pushedOut.Store(s.PushedOut)
	l.transmitted.Store(s.Transmitted)
	l.transmittedValue.Store(s.TransmittedValue)
	l.slots.Store(s.Slots)
	l.occupancy.Store(int64(occ))
}

// Snapshot reads the gauge from any goroutine.
func (l *Live) Snapshot() LiveSnapshot {
	return LiveSnapshot{
		Arrived:          l.arrived.Load(),
		Accepted:         l.accepted.Load(),
		Dropped:          l.dropped.Load(),
		PushedOut:        l.pushedOut.Load(),
		Transmitted:      l.transmitted.Load(),
		TransmittedValue: l.transmittedValue.Load(),
		Slots:            l.slots.Load(),
		Occupancy:        l.occupancy.Load(),
	}
}

// Add accumulates o into the snapshot, for aggregating across shards.
func (s *LiveSnapshot) Add(o LiveSnapshot) {
	s.Arrived += o.Arrived
	s.Accepted += o.Accepted
	s.Dropped += o.Dropped
	s.PushedOut += o.PushedOut
	s.Transmitted += o.Transmitted
	s.TransmittedValue += o.TransmittedValue
	s.Slots += o.Slots
	s.Occupancy += o.Occupancy
}

// Result is one shard's bit-exact outcome after a drain barrier: the
// same triple the single-threaded oracle produces for the shard's
// traffic partition, so equality is byte-for-byte.
type Result struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Slots is the number of slots the shard stepped before draining.
	Slots int64 `json:"slots"`
	// Stats is the shard switch's conservation-checked counters.
	Stats core.Stats `json:"stats"`
	// Ports is the per-local-port counter table.
	Ports []core.PortCounters `json:"ports"`
	// Counts is the obs recorder's flat counter slab (port-major,
	// obs.NumKinds lanes per port).
	Counts []uint64 `json:"counts"`
}

// DiffResult compares a shard result against an oracle run of the same
// traffic partition and returns a description of the first mismatch,
// or "" when the results are bit-identical.
func DiffResult(got Result, wantStats core.Stats, wantPorts []core.PortCounters, wantCounts []uint64) string {
	if got.Stats != wantStats {
		return fmt.Sprintf("shard %d stats diverge: got %+v want %+v", got.Shard, got.Stats, wantStats)
	}
	if len(got.Ports) != len(wantPorts) {
		return fmt.Sprintf("shard %d port-counter length: got %d want %d", got.Shard, len(got.Ports), len(wantPorts))
	}
	for i := range got.Ports {
		if got.Ports[i] != wantPorts[i] {
			return fmt.Sprintf("shard %d port %d counters diverge: got %+v want %+v", got.Shard, i, got.Ports[i], wantPorts[i])
		}
	}
	if len(got.Counts) != len(wantCounts) {
		return fmt.Sprintf("shard %d obs slab length: got %d want %d", got.Shard, len(got.Counts), len(wantCounts))
	}
	for i := range got.Counts {
		if got.Counts[i] != wantCounts[i] {
			return fmt.Sprintf("shard %d obs counter %d diverges: got %d want %d", got.Shard, i, got.Counts[i], wantCounts[i])
		}
	}
	return ""
}

// Shard is one port-partition worker: a private deterministic
// core.Switch stepped single-threaded by the shard goroutine, fed
// packed entries through an SPSC ingress ring. All mutable switch
// state is confined to the shard goroutine; the only cross-goroutine
// surfaces are the ring, the Live gauge, the obs.Mirror, and the ack
// channel that publishes drain barriers.
type Shard struct {
	id   int
	cfg  core.Config
	ring *Ring
	pool *Pool

	sw     *core.Switch
	rec    *obs.Recorder
	mirror *obs.Mirror
	live   *Live

	// batch stages the current slot's arrivals; always belongs to
	// slot `slot` (arrivals are non-decreasing in slot).
	batch []pkt.Packet
	// slot is the number of slots stepped so far == the next slot to
	// execute.
	slot int64
	// err is the first protocol or engine failure; after it is set the
	// shard keeps consuming (so producers never block forever) but
	// discards arrivals.
	err error

	// ack delivers one error (nil on success) per OpDrain barrier.
	ack chan error
	// done closes when the shard goroutine exits on OpStop.
	done chan struct{}
}

// newShard builds a shard over its partition-local configuration.
func newShard(id int, cfg core.Config, pol core.Policy, ringCap int, pool *Pool) (*Shard, error) {
	sw, err := core.New(cfg, pol)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", id, err)
	}
	rec := obs.NewRecorder(cfg.Ports, 0)
	sw.SetRecorder(rec)
	sh := &Shard{
		id:     id,
		cfg:    cfg,
		ring:   NewRing(ringCap),
		pool:   pool,
		sw:     sw,
		rec:    rec,
		mirror: obs.NewMirror(cfg.Ports),
		live:   &Live{},
		ack:    make(chan error, 1),
		done:   make(chan struct{}),
	}
	sh.batch = pool.Get(minSlab)
	return sh, nil
}

// ID returns the shard index.
func (sh *Shard) ID() int { return sh.id }

// Config returns the shard's partition-local configuration.
func (sh *Shard) Config() core.Config { return sh.cfg }

// Mirror returns the shard's atomically readable per-port counters.
func (sh *Shard) Mirror() *obs.Mirror { return sh.mirror }

// Live returns the shard's atomically readable progress gauge.
func (sh *Shard) Live() *Live { return sh.live }

// run is the shard event loop; exactly one goroutine executes it.
func (sh *Shard) run() {
	defer close(sh.done)
	for {
		e := sh.ring.Pop()
		if !e.IsControl() {
			sh.stage(e)
			continue
		}
		switch e.Op() {
		case OpAdvance:
			sh.advanceTo(e.Slot())
			sh.publish()
		case OpDrain:
			sh.advanceTo(e.Slot())
			sh.drain()
			sh.publish()
			sh.ack <- sh.err
		case OpStop:
			return
		}
	}
}

// stage buffers one arrival for its slot, stepping forward first if
// the arrival opens a later slot.
func (sh *Shard) stage(e Entry) {
	if sh.err != nil {
		return
	}
	slot := e.Slot()
	if slot < sh.slot {
		sh.err = fmt.Errorf("shard %d: arrival for slot %d after slot %d was stepped", sh.id, slot, sh.slot)
		return
	}
	if slot > sh.slot {
		sh.advanceTo(slot)
		if sh.err != nil {
			return
		}
	}
	if len(sh.batch) == cap(sh.batch) {
		grown := sh.pool.Get(2 * cap(sh.batch))
		grown = grown[:len(sh.batch)]
		copy(grown, sh.batch)
		sh.pool.Put(sh.batch)
		sh.batch = grown
	}
	sh.batch = append(sh.batch, e.Packet())
}

// advanceTo steps the switch until the slot counter reaches target:
// the staged batch feeds the current slot, every further slot is
// empty. On engine failure the shard records the error and fast-forwards
// its counter so the producer protocol stays in sync.
func (sh *Shard) advanceTo(target int64) {
	for sh.slot < target {
		if sh.err != nil {
			sh.batch = sh.batch[:0]
			sh.slot = target
			return
		}
		if err := sh.sw.Step(sh.batch); err != nil {
			sh.err = fmt.Errorf("shard %d at slot %d: %w", sh.id, sh.slot, err)
		}
		sh.batch = sh.batch[:0]
		sh.slot++
	}
}

// drain empties the switch, bounded the same way the sim harness
// bounds drains so a wedged shard errors instead of spinning.
func (sh *Shard) drain() {
	if sh.err != nil {
		return
	}
	if len(sh.batch) > 0 {
		// A drain with staged arrivals means the producer skipped the
		// advance past the last armed slot; step it first.
		sh.advanceTo(sh.slot + 1)
		if sh.err != nil {
			return
		}
	}
	if slots, ok := sh.sw.DrainMax(drainBound(sh.cfg)); !ok {
		sh.err = fmt.Errorf("shard %d: drain did not empty the buffer within %d slots", sh.id, slots)
	}
}

// publish refreshes the cross-goroutine gauges; shard goroutine only.
func (sh *Shard) publish() {
	sh.live.publish(sh.sw.Stats(), sh.sw.Occupancy())
	sh.mirror.Publish(sh.rec)
}

// result snapshots the shard's bit-exact outcome. Only safe after a
// drain barrier's ack (or before Start), when the shard goroutine is
// parked and the ack receive established the happens-before edge.
func (sh *Shard) result() Result {
	return Result{
		Shard:  sh.id,
		Slots:  sh.slot,
		Stats:  sh.sw.Stats(),
		Ports:  sh.sw.PortCounters(),
		Counts: sh.rec.SaveCounts(nil),
	}
}

// reset restores the shard to its initial empty state for a new
// stream. Same safety contract as result.
func (sh *Shard) reset() {
	sh.sw.Reset()
	sh.rec.Reset()
	sh.batch = sh.batch[:0]
	sh.slot = 0
	sh.err = nil
	sh.publish()
}
