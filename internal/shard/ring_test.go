package shard

import (
	"fmt"
	"testing"

	"smbm/internal/pkt"
)

func TestEntryPacking(t *testing.T) {
	e := Arrival(123456, pkt.Packet{Port: 513, Work: 7, Value: 200})
	if e.IsControl() {
		t.Fatalf("arrival entry classified as control")
	}
	if e.Slot() != 123456 {
		t.Fatalf("slot = %d, want 123456", e.Slot())
	}
	p := e.Packet()
	if p.Port != 513 || p.Work != 7 || p.Value != 200 {
		t.Fatalf("packet = %+v, want {513 7 200}", p)
	}

	c := Control(OpDrain, 99)
	if !c.IsControl() {
		t.Fatalf("control entry not classified as control")
	}
	if c.Op() != OpDrain || c.Slot() != 99 {
		t.Fatalf("control = op %d slot %d, want op %d slot 99", c.Op(), c.Slot(), OpDrain)
	}
}

func TestRingSingleThreaded(t *testing.T) {
	r := NewRing(7) // rounds up to 8
	if r.Cap() != 8 {
		t.Fatalf("cap = %d, want 8", r.Cap())
	}
	if _, ok := r.TryPop(); ok {
		t.Fatalf("pop from empty ring succeeded")
	}
	for i := 0; i < 8; i++ {
		if !r.TryPush(Entry(i)) {
			t.Fatalf("push %d failed below capacity", i)
		}
	}
	if r.TryPush(Entry(99)) {
		t.Fatalf("push into full ring succeeded")
	}
	for i := 0; i < 8; i++ {
		e, ok := r.TryPop()
		if !ok || e != Entry(i) {
			t.Fatalf("pop %d = %d ok=%v", i, e, ok)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after draining", r.Len())
	}
}

// TestRingConcurrent streams entries through a deliberately tiny ring
// so both the full (producer parks) and empty (consumer parks) paths
// are exercised; run with -race it checks the SPSC publication fences.
func TestRingConcurrent(t *testing.T) {
	const total = 1 << 16
	r := NewRing(16)
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			e := r.Pop()
			if e != Entry(i) {
				done <- fmt.Errorf("entry %d = %d", i, e)
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < total; i++ {
		r.Push(Entry(i))
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
