package shard

import (
	"sync"
	"sync/atomic"

	"smbm/internal/pkt"
)

// Budget is the shared staging-capacity account, in packets, that all
// shards' slab pools draw from. It is the compare-and-swap
// allocate/release accounting of a shared packet buffer lifted to the
// runtime's staging memory: acquisition races are resolved by CAS on a
// single atomic free counter, never by a lock, so the admission hot
// path never blocks on another shard's allocation.
//
// The budget bounds pool memory, not admission: admission decisions
// are made by each shard's deterministic switch against its own
// per-shard Buffer, so budget contention can delay a slab grow but can
// never change which packets are admitted — that is what keeps the
// sharded runtime bit-identical to the single-threaded oracle.
type Budget struct {
	capacity int64
	free     atomic.Int64
	// emergencies counts allocations that proceeded without budget
	// after reclaim failed; see Pool.Get.
	emergencies atomic.Int64
}

// NewBudget builds a budget with the given capacity in packets.
func NewBudget(capacity int64) *Budget {
	b := &Budget{capacity: capacity}
	b.free.Store(capacity)
	return b
}

// Cap returns the budget's total capacity in packets.
func (b *Budget) Cap() int64 { return b.capacity }

// Free returns the packets currently unallocated.
func (b *Budget) Free() int64 { return b.free.Load() }

// Emergencies returns how many slab allocations bypassed the budget
// because it was exhausted even after reclaiming local free slabs.
// A nonzero value means the budget is undersized for the offered load.
func (b *Budget) Emergencies() int64 { return b.emergencies.Load() }

// TryAcquire claims n packets of budget, failing without blocking if
// fewer than n are free.
func (b *Budget) TryAcquire(n int64) bool {
	for {
		free := b.free.Load()
		if free < n {
			return false
		}
		if b.free.CompareAndSwap(free, free-n) {
			return true
		}
	}
}

// Release returns n packets of budget, clamped at the capacity:
// slabs allocated on the emergency path (past an exhausted budget)
// were never drawn from the account, so releasing them must not push
// the free count above what the budget actually owns.
func (b *Budget) Release(n int64) {
	for {
		free := b.free.Load()
		next := free + n
		if next > b.capacity {
			next = b.capacity
		}
		if b.free.CompareAndSwap(free, next) {
			return
		}
	}
}

// minSlab is the smallest slab capacity a pool hands out; larger
// demands are served from geometrically larger size classes.
const minSlab = 64

// poolClasses is the number of slab size classes: minSlab << class,
// topping out at minSlab<<(poolClasses-1) packets per slab.
const poolClasses = 13

// Pool is one shard's staging-slab allocator. Get and Put serve the
// shard's event loop; Shrink runs from the runtime's pool-manager
// goroutine, off the admission hot path, returning surplus free slabs
// to the shared Budget. The mutex only guards the free lists — the
// steady state (one staging slab reused every slot) touches the pool
// not at all.
type Pool struct {
	budget *Budget

	mu sync.Mutex
	// frees[c] holds free slabs of capacity minSlab<<c.
	frees [poolClasses][][]pkt.Packet
	// held is the budget currently attributed to this pool, both free
	// and handed-out slabs.
	held int64
	// hiWater is the free-packet threshold above which the pool asks
	// the manager for a shrink.
	hiWater int64
	// freePkts is the packet capacity sitting on the free lists.
	freePkts int64
	// wantShrink signals the manager; see NeedShrink.
	wantShrink atomic.Bool
	// kick, when set, receives a non-blocking token whenever
	// wantShrink is raised, waking the manager goroutine.
	kick chan<- struct{}
}

// NewPool builds a pool drawing from budget, asking for a shrink once
// more than hiWater packets of slab capacity sit unused (0 applies a
// default of four maximum-demand slabs).
func NewPool(budget *Budget, hiWater int64) *Pool {
	if hiWater <= 0 {
		hiWater = 4 * minSlab << (poolClasses - 1)
	}
	return &Pool{budget: budget, hiWater: hiWater}
}

// classFor returns the smallest size class holding need packets.
func classFor(need int) int {
	c, size := 0, minSlab
	for size < need && c < poolClasses-1 {
		size <<= 1
		c++
	}
	return c
}

// Get returns an empty slab with capacity at least need (clamped to
// the largest size class). It prefers a free slab, then budgeted
// allocation, then reclaiming this pool's own free slabs; if the
// budget is exhausted even after reclaim it allocates anyway and
// counts an emergency, because stalling the shard would back-pressure
// the ingress ring without bounding memory any better — the budget is
// capacity accounting, not an admission gate.
func (p *Pool) Get(need int) []pkt.Packet {
	c := classFor(need)
	size := minSlab << c

	p.mu.Lock()
	if n := len(p.frees[c]); n > 0 {
		s := p.frees[c][n-1]
		p.frees[c][n-1] = nil
		p.frees[c] = p.frees[c][:n-1]
		p.freePkts -= int64(size)
		p.mu.Unlock()
		return s[:0]
	}
	p.mu.Unlock()

	if p.budget.TryAcquire(int64(size)) {
		p.noteHeld(int64(size))
		return make([]pkt.Packet, 0, size)
	}
	// Budget exhausted: return our own idle capacity and retry once.
	p.reclaim()
	if p.budget.TryAcquire(int64(size)) {
		p.noteHeld(int64(size))
		return make([]pkt.Packet, 0, size)
	}
	p.budget.emergencies.Add(1)
	p.noteHeld(int64(size))
	return make([]pkt.Packet, 0, size)
}

// noteHeld bumps the held accounting under the lock.
func (p *Pool) noteHeld(n int64) {
	p.mu.Lock()
	p.held += n
	p.mu.Unlock()
}

// Put returns a slab to the free lists. Slabs whose capacity is not a
// pool size class (foreign slices) are dropped on the floor with their
// budget released.
func (p *Pool) Put(s []pkt.Packet) {
	size := cap(s)
	c := classFor(size)
	if minSlab<<c != size {
		p.mu.Lock()
		p.held -= int64(size)
		p.mu.Unlock()
		p.budget.Release(int64(size))
		return
	}
	p.mu.Lock()
	p.frees[c] = append(p.frees[c], s[:0])
	p.freePkts += int64(size)
	want := p.freePkts > p.hiWater
	p.mu.Unlock()
	if want {
		p.wantShrink.Store(true)
		if p.kick != nil {
			select {
			case p.kick <- struct{}{}:
			default:
			}
		}
	}
}

// NeedShrink reports and clears the pool's shrink request. The
// runtime's manager polls it after ring activity and on stream
// boundaries.
func (p *Pool) NeedShrink() bool {
	return p.wantShrink.Swap(false)
}

// Shrink returns free slabs to the budget until at most hiWater
// packets of free capacity remain, largest classes first, and returns
// the packets released. Called from the manager goroutine.
func (p *Pool) Shrink() int64 {
	var released int64
	p.mu.Lock()
	for c := poolClasses - 1; c >= 0 && p.freePkts > p.hiWater; c-- {
		size := int64(minSlab << c)
		for len(p.frees[c]) > 0 && p.freePkts > p.hiWater {
			n := len(p.frees[c])
			p.frees[c][n-1] = nil
			p.frees[c] = p.frees[c][:n-1]
			p.freePkts -= size
			p.held -= size
			released += size
		}
	}
	p.mu.Unlock()
	p.budget.Release(released)
	return released
}

// reclaim returns every free slab to the budget regardless of
// watermark. Used when the budget runs dry.
func (p *Pool) reclaim() {
	var released int64
	p.mu.Lock()
	for c := range p.frees {
		size := int64(minSlab << c)
		released += size * int64(len(p.frees[c]))
		p.held -= size * int64(len(p.frees[c]))
		p.frees[c] = nil
	}
	p.freePkts = 0
	p.mu.Unlock()
	p.budget.Release(released)
}

// Held returns the budget currently attributed to this pool.
func (p *Pool) Held() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.held
}

// FreePackets returns the packet capacity sitting on the free lists.
func (p *Pool) FreePackets() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freePkts
}
