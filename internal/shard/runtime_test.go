package shard

import (
	"fmt"
	"sync"
	"testing"

	"smbm/internal/core"
	"smbm/internal/obs"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/sim"
	"smbm/internal/traffic"
)

func TestPartitionPorts(t *testing.T) {
	parts := PartitionPorts(10, 3)
	want := []Partition{{0, 4}, {4, 7}, {7, 10}}
	for i := range want {
		if parts[i] != want[i] {
			t.Fatalf("parts = %v, want %v", parts, want)
		}
	}
}

func TestShardConfigBufferSplit(t *testing.T) {
	cfg := core.Config{
		Model:    core.ModelProcessing,
		Ports:    10,
		Buffer:   23,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 1, 2, 2, 2, 3, 3, 4, 4, 4},
	}
	parts := PartitionPorts(cfg.Ports, 3)
	var sumB, sumP int
	for i := range parts {
		sc := ShardConfig(cfg, parts, i)
		if sc.Ports != parts[i].Ports() {
			t.Fatalf("shard %d ports = %d, want %d", i, sc.Ports, parts[i].Ports())
		}
		if sc.Buffer < sc.Ports {
			t.Fatalf("shard %d buffer %d < ports %d", i, sc.Buffer, sc.Ports)
		}
		if len(sc.PortWork) != sc.Ports {
			t.Fatalf("shard %d portwork len = %d", i, len(sc.PortWork))
		}
		for j, w := range sc.PortWork {
			if w != cfg.PortWork[parts[i].Lo+j] {
				t.Fatalf("shard %d portwork = %v", i, sc.PortWork)
			}
		}
		sumB += sc.Buffer
		sumP += sc.Ports
	}
	if sumB != cfg.Buffer || sumP != cfg.Ports {
		t.Fatalf("splits sum to B=%d P=%d, want B=%d P=%d", sumB, sumP, cfg.Buffer, cfg.Ports)
	}
}

// testTrace materializes a seeded bursty MMPP trace for the given
// global configuration.
func testTrace(t *testing.T, cfg core.Config, slots int, seed int64) traffic.Trace {
	t.Helper()
	mc := traffic.MMPPConfig{
		Sources:  2 * cfg.Ports,
		LambdaOn: 1.2,
		POnOff:   0.05,
		POffOn:   0.2,
		Label:    traffic.LabelWorkByPort,
		Ports:    cfg.Ports,
		MaxLabel: cfg.MaxLabel,
		PortWork: cfg.PortWork,
		Seed:     seed,
	}
	g, err := traffic.NewMMPP(mc)
	if err != nil {
		t.Fatalf("mmpp: %v", err)
	}
	return traffic.Record(g, slots)
}

// oracle replays one shard's traffic partition through the
// single-threaded harness and returns the bit-exact reference triple.
func oracle(t *testing.T, cfg core.Config, pol core.Policy, local traffic.Trace) (core.Stats, []core.PortCounters, []uint64) {
	t.Helper()
	sw, err := core.New(cfg, pol)
	if err != nil {
		t.Fatalf("oracle switch: %v", err)
	}
	rec := obs.NewRecorder(cfg.Ports, 0)
	sw.SetRecorder(rec)
	stats, err := sim.RunTrace(sw, local, 0)
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return stats, sw.PortCounters(), rec.SaveCounts(nil)
}

// checkOracle asserts every shard result is bit-identical to the
// single-threaded replay of its partition.
func checkOracle(t *testing.T, rt *Runtime, pol func() core.Policy, tr traffic.Trace, results []Result) {
	t.Helper()
	for i, res := range results {
		local := FilterTrace(tr, rt.Partition(i))
		wantStats, wantPorts, wantCounts := oracle(t, rt.ShardConfig(i), pol(), local)
		if diff := DiffResult(res, wantStats, wantPorts, wantCounts); diff != "" {
			t.Fatalf("oracle differential: %s", diff)
		}
	}
}

func testConfig() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    8,
		Buffer:   32,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 1, 2, 2, 3, 3, 4, 4},
	}
}

func TestRuntimeOracleDifferential(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, cfg, 400, 42)
	factory := func() core.Policy { return policy.LQD{} }

	for _, shards := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			rt, err := NewRuntime(cfg, shards, factory, Options{RingCap: 64})
			if err != nil {
				t.Fatalf("NewRuntime: %v", err)
			}
			rt.Start()
			defer rt.Stop()
			if err := rt.BeginStream(); err != nil {
				t.Fatalf("BeginStream: %v", err)
			}
			for slot, burst := range tr {
				for _, p := range burst {
					if err := rt.Ingest(int64(slot), p); err != nil {
						t.Fatalf("Ingest: %v", err)
					}
				}
				rt.Advance(int64(slot) + 1)
			}
			results, err := rt.Finish(int64(len(tr)))
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			checkOracle(t, rt, factory, tr, results)
		})
	}
}

// TestRuntimeLazyAdvance drops the per-slot Advance calls: shards are
// advanced only by later arrivals and the final Finish barrier. The
// stepped slot sequence must be identical either way.
func TestRuntimeLazyAdvance(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, cfg, 300, 7)
	factory := func() core.Policy { return policy.LWD{} }

	rt, err := NewRuntime(cfg, 3, factory, Options{RingCap: 128})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.BeginStream(); err != nil {
		t.Fatalf("BeginStream: %v", err)
	}
	for slot, burst := range tr {
		for _, p := range burst {
			if err := rt.Ingest(int64(slot), p); err != nil {
				t.Fatalf("Ingest: %v", err)
			}
		}
	}
	results, err := rt.Finish(int64(len(tr)))
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	checkOracle(t, rt, factory, tr, results)
}

// TestFeederSharded drives each shard from its own producer goroutine
// over the pre-partitioned trace — the selftest loadgen's shape — and
// checks the oracle differential per shard.
func TestFeederSharded(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, cfg, 400, 99)
	factory := func() core.Policy { return policy.LQD{} }

	rt, err := NewRuntime(cfg, 4, factory, Options{RingCap: 64})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	rt.Start()
	defer rt.Stop()
	if err := rt.BeginStream(); err != nil {
		t.Fatalf("BeginStream: %v", err)
	}

	results := make([]Result, rt.Shards())
	errs := make([]error, rt.Shards())
	var wg sync.WaitGroup
	for i := 0; i < rt.Shards(); i++ {
		local := FilterTrace(tr, rt.Partition(i))
		f := rt.Feeder(i)
		wg.Add(1)
		go func(i int, local traffic.Trace) {
			defer wg.Done()
			for slot, burst := range local {
				for _, p := range burst {
					f.Arrive(int64(slot), p)
				}
			}
			results[i], errs[i] = f.Finish(int64(len(local)))
		}(i, local)
	}
	wg.Wait()
	rt.EndStream()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	checkOracle(t, rt, factory, tr, results)
}

// TestPolicySwapBetweenStreams swaps the admission policy across
// streams and checks each stream against its own policy's oracle —
// including that the second stream starts from a clean slate.
func TestPolicySwapBetweenStreams(t *testing.T) {
	cfg := testConfig()
	tr := testTrace(t, cfg, 250, 11)
	greedy := func() core.Policy { return policy.Greedy{} }
	lqd := func() core.Policy { return policy.LQD{} }

	rt, err := NewRuntime(cfg, 2, greedy, Options{RingCap: 64})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	rt.Start()
	defer rt.Stop()

	run := func(pol func() core.Policy) {
		t.Helper()
		if err := rt.BeginStream(); err != nil {
			t.Fatalf("BeginStream: %v", err)
		}
		if err := rt.SetPolicy(pol); err == nil {
			t.Fatalf("SetPolicy during a stream succeeded")
		}
		for slot, burst := range tr {
			for _, p := range burst {
				if err := rt.Ingest(int64(slot), p); err != nil {
					t.Fatalf("Ingest: %v", err)
				}
			}
		}
		results, err := rt.Finish(int64(len(tr)))
		if err != nil {
			t.Fatalf("Finish: %v", err)
		}
		checkOracle(t, rt, pol, tr, results)
	}

	run(greedy)
	if rt.PolicyName() != (policy.Greedy{}).Name() {
		t.Fatalf("policy = %s before swap", rt.PolicyName())
	}
	if err := rt.SetPolicy(lqd); err != nil {
		t.Fatalf("SetPolicy: %v", err)
	}
	if rt.PolicyName() != (policy.LQD{}).Name() {
		t.Fatalf("policy = %s after swap", rt.PolicyName())
	}
	run(lqd)
}

func TestRuntimeGuards(t *testing.T) {
	cfg := testConfig()
	factory := func() core.Policy { return policy.LQD{} }

	if _, err := NewRuntime(cfg, 0, factory, Options{}); err == nil {
		t.Fatalf("0 shards accepted")
	}
	if _, err := NewRuntime(cfg, cfg.Ports+1, factory, Options{}); err == nil {
		t.Fatalf("more shards than ports accepted")
	}
	big := cfg
	big.MaxLabel = 256
	if _, err := NewRuntime(big, 1, factory, Options{}); err == nil {
		t.Fatalf("MaxLabel 256 accepted")
	}

	rt, err := NewRuntime(cfg, 2, factory, Options{RingCap: 64})
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	if err := rt.BeginStream(); err == nil {
		t.Fatalf("BeginStream before Start succeeded")
	}
	rt.Start()
	defer rt.Stop()
	if _, err := rt.Finish(0); err == nil {
		t.Fatalf("Finish without a stream succeeded")
	}
	if err := rt.BeginStream(); err != nil {
		t.Fatalf("BeginStream: %v", err)
	}
	if err := rt.BeginStream(); err == nil {
		t.Fatalf("second BeginStream succeeded")
	}
	if err := rt.Ingest(0, pkt.Packet{Port: cfg.Ports, Work: 1, Value: 1}); err == nil {
		t.Fatalf("out-of-range port ingested")
	}
	if err := rt.Ingest(1<<32, pkt.New(0)); err == nil {
		t.Fatalf("slot beyond 32 bits ingested")
	}
	if _, err := rt.Finish(0); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	rt.Stop()
	if err := rt.BeginStream(); err == nil {
		t.Fatalf("BeginStream after Stop succeeded")
	}
}
