// Package report generates EXPERIMENTS.md: it runs the full evaluation
// (lower-bound constructions, the nine Fig. 5 panels, the architecture
// comparison) and interleaves the measured tables with the paper-vs-
// measured analysis. Regenerate with:
//
//	go run ./cmd/report > EXPERIMENTS.md
package report

import (
	"fmt"
	"io"
	"strconv"

	"smbm/internal/adversary"
	"smbm/internal/experiments"
	"smbm/internal/tablefmt"
)

// analyses holds the per-panel paper-vs-measured commentary, keyed by
// panel id. The wording states what the paper claims and what the tables
// below it show; the claims themselves are enforced by tests in
// internal/experiments, so the text cannot silently rot.
var analyses = map[string]string{
	"fig5.1": `Paper: "performance of all algorithms decreases as k grows, but
non-preemptive algorithms clearly deteriorate faster. BPD turns out to be
a very poor heuristic ... BPD1 does better but remains a poor fit" and
LWD is the best policy.
Measured: every column grows with k; LWD is lowest at every k; BPD is the
worst push-out policy by a wide margin with BPD1 between BPD and the
rest; the greedy tail-drop baseline deteriorates fastest. **Shape
reproduced** (enforced by TestPanel1Shape).`,
	"fig5.2": `Paper: "non-preemptive algorithms become worse at first but then
come back when OPT stops improving. Preemptive algorithms do better ...
with BPD and BPD1 outperforming non-preemptive algorithms as congestion
reduces, and LWD retains best throughout."
Measured: LWD lowest in every row; BPD/BPD1 are the worst policies at
small B but cross below NEST/NHDT by B=1024-2048 as congestion
dissolves. **Shape reproduced, including the BPD crossover** (enforced by
TestPanel2BPDRecovery).`,
	"fig5.3": `Paper: "preemptive algorithms pick up on this advantage quicker
than non-preemptive ones, and again, LWD is the best algorithm."
Measured: all ratios fall with C; LQD/LWD drop fastest and LWD is lowest
everywhere. **Shape reproduced.**`,
	"fig5.4": `Paper: growing k relieves congestion: "at first the optimal
algorithm can make better use of it, but then congestion reduces and
suboptimal algorithms catch up"; "MRD outperforms all other algorithms,
but the difference with LQD is rather small. Both MVD and MVD1 trail
relatively far behind."
Measured: the non-preemptive hump matches the description; MRD <= LQD at
every k and MVD/MVD1 trail. **Shape reproduced.** (The congestion knee
sits at larger k here because the offered rate is calibrated at k=16.)`,
	"fig5.5": `Paper: larger buffers relieve congestion; MRD stays best, MVD
trails.
Measured: all ratios monotonically fall with B; MRD <= LQD in every row;
MVD/MVD1 trail throughout. **Shape reproduced.**`,
	"fig5.6": `Paper: "as speedup grows, MVD begins to outperform both LQD and
MRD. This is caused by situations when a burst can be processed almost
entirely in a single time slot (due to large speedup) but cannot fit in
the buffer size (due to high intensity λ)".
Measured: at C=1 LQD/MRD beat MVD; from C=4 the order flips. **Crossover
reproduced** under the megaburst traffic profile (enforced by
TestPanel6MVDCrossover).`,
	"fig5.7": `Paper: "In this special case, MRD performs noticeably better than
LQD ... MRD is never explicitly worse than LQD, and its advantage grows
for distributions that prioritize certain values at specific queues.
Again, preemptive algorithms outperform non-preemptive ones, with the
exception of MVD, even in its enhanced MVD1 version."
Measured: MRD beats LQD at every k with a growing gap; MVD/MVD1 are the
worst policies, worse than every non-preemptive one. **Shape
reproduced** (enforced by TestPanel7Shape).`,
	"fig5.8": `Paper: same ordering against B.
Measured: MRD <= LQD in every row; MVD/MVD1 worst throughout;
non-preemptive policies in between. **Shape reproduced.**`,
	"fig5.9": `Paper: speedup panel of the value≡port case; MVD catches up at
high speedup, MRD best overall.
Measured: MRD lowest in every row; MVD crosses below LQD at high C;
static thresholds collapse under megabursts. **Shape reproduced.**`,
}

// theoremRows summarizes the lower-bound verdicts; the tolerances are
// asserted by internal/adversary's tests.
const theoremVerdicts = `| Exp | Paper claims | Measured vs predicted | Verdict |
|---|---|---|---|
| Thm 1 | NHST >= kZ | measured = exact prediction B/ceil(B/kZ) | reproduced |
| Thm 2 | NEST >= n | exact | exact |
| Thm 3 | NHDT >= (1/2)sqrt(k ln k) | tracks the proof's finite-B formula | reproduced |
| Thm 4 | LQD >= sqrt(k) - o(sqrt(k)) | tracks the proof's finite-k formula; growth with k verified | reproduced |
| Thm 5 | BPD >= ln k + gamma = H_k | exact across k | exact |
| Thm 6 | LWD >= 4/3 - 6/B | exact | exact |
| Thm 9 | value-LQD >= cbrt(k) | within 5% of the proof's accounting | reproduced |
| Thm 10 | MVD >= (m-1)/2 | exact per-slot accounting (m+1)/2 | reproduced |
| Thm 11 | MRD >= 4/3 (value≡port) | exact | exact |
`

// header opens the document.
const header = `# EXPERIMENTS — paper vs. measured

This file is generated: ` + "`go run ./cmd/report > EXPERIMENTS.md`" + `.

Every evaluation artifact of the paper (the nine panels of Fig. 5 and the
lower-bound theorems) against what this reproduction measures. The
paper's graph captions — and therefore its exact traffic parameters — are
not part of the available text, so absolute ratios are not comparable;
the reproduction target is the *shape*: which policy wins, how curves
grow, where crossovers sit. Every "shape reproduced" claim below is also
enforced by a test named next to it, so this document cannot drift from
the code.

Regenerate pieces interactively with:

` + "```" + `
go run ./cmd/smbsim                 # Fig. 5 panels (add -scale paper for the paper-scale preset)
go run ./cmd/smbsim -experiment arch
go run ./cmd/lowerbound             # theorem table
go run ./cmd/conjecture             # open-problem hunts
go test -bench=. -benchmem ./...    # benchmark harness (ratios as custom metrics)
` + "```" + `

## Methodology notes

- **OPT reference.** As in the paper, OPT is approximated by a single
  priority queue over the whole buffer with n·C cores
  (smallest-work-first / largest-value-first). The paper notes this proxy
  "may perform even better than optimal in our model" under congestion.
  Our exact-optimum solver shows the proxy is *not* a strict upper bound
  on shared-memory OPT — see TestSPQProxyIsNotAStrictUpperBound for a
  9-packet counterexample — but under the congested workloads of Fig. 5
  it consistently dominates, so measured ratios stay honest.
- **Lower-bound constructions** use the proofs' scripted clairvoyant OPT
  strategies (static per-port thresholds) rather than the SPQ proxy, so
  the measured ratio is exactly the quantity each proof accounts. Each
  construction warms both systems into steady state and measures whole
  rounds, mirroring the proofs' "the process repeats" accounting.
- **Theorem 7 (LWD <= 2)** is an upper bound, hence not a construction:
  it is validated three ways — as an executable invariant
  (TestQuickLWDTwoCompetitive: 2·LWD >= ExactOPT over exhaustive tiny
  instances), by a randomized falsification hunt (cmd/conjecture), and by
  executing the proof's own Fig. 3 mapping routine live
  (internal/mapcheck). The routine as literally written violates its
  Lemma 8 latency claim in a push-out corner (minimal witness in
  TestLiteralRoutineGap); a conditionally-upgrading repair maintains the
  invariant on every tested instance. DESIGN.md §6 has the full story.
- **Paper-scale recipe.** The full-size evaluation is one flag:

  ` + "```" + `
  go run ./cmd/smbsim -scale paper -workers 8 -checkpoint paper.ckpt
  ` + "```" + `

  -scale paper selects the 2·10^6-slot, 500-source preset
  (experiments.PaperScale); explicit -slots/-seeds/-sources flags still
  override individual fields. Arrivals stream from seeded MMPP cursors
  instead of materialized traces, so per-worker trace memory is O(1) in
  the slot count — benchjson's trace_memory metric records the
  measured bytes/slot for both modes — and the same seeds reproduce the
  same ratios bit-for-bit at any -workers setting (enforced by
  internal/sim/stream_differential_test.go). DESIGN.md §10 documents
  the Provider contract.
- **Checkpointed resume.** Paper-scale sweeps (-scale paper -seeds 5)
  run for hours; smbsim -checkpoint run.ckpt journals every completed
  (x, seed) sweep cell as a JSON line, and a re-run with the same flag
  loads the journal and skips finished cells, so a crash or Ctrl-C
  (which prints the completed points as a partial table and exits with
  code 2) costs only the in-flight cells. The journal is keyed by sweep
  name, so one file serves a whole multi-panel run; -cell-timeout bounds
  runaway cells without killing the sweep. Every journal opens with a
  fingerprint of the sweep's configuration (swept values, seeds, base
  seed, fixed parameters, policy roster, fault spec): resuming after a
  flag change fails loudly naming the changed field, so cells computed
  under different configurations can never merge into one table. Legacy
  journals without a fingerprint resume with a warning and are upgraded
  in place.
- **Distributed sweeps.** To split a paper-scale run across processes
  (or machines sharing a filesystem), swap the journal for the lease
  ledger — same flags on every process, one shared directory:

  ` + "```" + `
  mkdir -p ledger
  go run ./cmd/smbsim -scale paper -ledger ledger -worker &   # as many
  go run ./cmd/smbsim -scale paper -ledger ledger -worker &   # as you like
  go run ./cmd/smbsim -scale paper -ledger ledger -coordinator
  ` + "```" + `

  Workers lease (x, seed) cells with expiring, fenced leases, journal
  results crash-safely (fsynced completes, torn-tail-tolerant
  append-only files), and print one summary line per sweep; the
  coordinator computes nothing and renders the merged tables once the
  grid is done. A SIGKILLed worker costs only its in-flight cells:
  its leases expire after -lease-ttl and are reclaimed, a resumed
  zombie cannot clobber newer results (fencing tokens), and the merged
  tables are bit-identical to a single-process run — the chaos harness
  (make chaos) asserts exactly that under seeded kills and journal
  truncation. A cell failing more than -cell-retries times is reported
  degraded; the remaining tables still render. DESIGN.md §13 has the
  record grammar and crash matrix.
- **Fault injection** (cmd/smbsim -experiment faults, -faults "<spec>")
  wraps every system — each policy and the OPT proxy — in an identical
  seeded fault schedule, so the degraded ratio stays an apples-to-apples
  comparison. DESIGN.md §8 documents the fault model.
- **Observability recipes** (DESIGN.md §12). Decision counters explain
  *why* a policy's ratio moved — which ports it starved, how much work
  its push-outs discarded:

  ` + "```" + `
  go run ./cmd/smbsim -experiment fig5.1 -obs           # counters per report
  go run ./cmd/smbsim -experiment fig5.3 -obs -faults "blackout" \
      -trace-events 64 -trace-out events.txt            # + last-64-events dump
  go run ./cmd/smbsim -scale paper -checkpoint paper.ckpt \
      -pprof localhost:6060                             # watch a long run:
  curl -s localhost:6060/debug/vars | grep smbsim.progress
  make obs-demo                                         # all of it, small
  make bench-assert                                     # overhead gate: 0 allocs/op
  ` + "```" + `

  Counters are recorded branch-on-nil in the engine, so runs without
  -obs pay one pointer compare per decision and remain allocation-free
  (asserted by benchjson -assert-zero-allocs in CI). The OPT proxy is
  not instrumented: counters describe the policies under study.

`

// Generate runs the evaluation and writes the document to w.
func Generate(w io.Writer, o experiments.Options) error {
	if err := lowerBoundSection(w); err != nil {
		return err
	}
	for _, id := range experiments.PanelIDs() {
		if err := panelSection(w, id, o); err != nil {
			return err
		}
	}
	if err := archSection(w, o); err != nil {
		return err
	}
	if err := latencySection(w, o); err != nil {
		return err
	}
	_, err := io.WriteString(w, benchSection)
	return err
}

// latencySection runs and writes the delay/throughput trade-off sweep.
func latencySection(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Latency(o)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, `## Latency trade-off (cmd/smbsim -experiment latency)

The paper closes on the observation that "as buffers get smaller, the
effect of processing delay becomes much more pronounced". The sweep
below shows the delay/throughput trade-off the admission policies
navigate: LWD delivers several times Greedy's throughput at a fraction
of its latency, at every buffer size (enforced by TestLatencySweep):

`+"```\n%s```\n\n", experiments.LatencyTable(rows))
	return err
}

// lowerBoundSection writes the header and the theorem table.
func lowerBoundSection(w io.Writer) error {
	if _, err := io.WriteString(w, header); err != nil {
		return err
	}
	if _, err := io.WriteString(w, "## Lower-bound theorems (cmd/lowerbound)\n\n"+
		"\"measured\" is scripted-OPT / policy at default parameters; \"predicted\" is\n"+
		"the proof's own finite-parameter accounting; the asymptotic column is the\n"+
		"bound as stated in the paper, evaluated at these parameters.\n\n```\n"); err != nil {
		return err
	}
	all, err := adversary.All()
	if err != nil {
		return err
	}
	headers := []string{"theorem", "policy", "alg", "opt(script)", "measured", "predicted", "asymptotic"}
	rows := make([][]string, 0, len(all))
	for _, c := range all {
		o, err := c.Run()
		if err != nil {
			return err
		}
		rows = append(rows, []string{
			o.Theorem, o.PolicyName,
			strconv.FormatInt(o.AlgThroughput, 10),
			strconv.FormatInt(o.OptThroughput, 10),
			fmt.Sprintf("%.3f", o.Ratio),
			fmt.Sprintf("%.3f", o.Predicted),
			fmt.Sprintf("%s = %.3f", c.Asymptotic, o.AsymptoticValue),
		})
	}
	if _, err := io.WriteString(w, tablefmt.Render(headers, rows)); err != nil {
		return err
	}
	_, err = io.WriteString(w, "```\n\n"+theoremVerdicts+"\n")
	return err
}

// panelSection runs one Fig. 5 panel and writes its table + analysis.
func panelSection(w io.Writer, id string, o experiments.Options) error {
	sweep, err := experiments.Panel(id, o)
	if err != nil {
		return err
	}
	result, err := sweep.Run()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "### %s — competitive ratio vs %s\n\n%s\n\n```\n%s```\n\n",
		id, result.XLabel, analyses[id], result.Table()); err != nil {
		return err
	}
	return nil
}

// archSection runs and writes the architecture comparison.
func archSection(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Architectures(o)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, `## Architecture comparison (Fig. 1, cmd/smbsim -experiment arch)

The paper's introduction motivates the shared-memory switch against the
single-queue architecture: a single priority queue with push-out is
throughput-optimal but starves expensive classes and needs priority-order
hardware; per-type FIFO queues under LWD stay close in throughput with
bounded per-class latency. Same MMPP traffic, same total buffer and core
budget (enforced by TestArchitectures):

`+"```\n%s```\n\n", experiments.ArchTable(rows))
	return err
}

// benchSection closes the document.
const benchSection = `## Benchmarks

` + "`bench_test.go`" + ` provides one benchmark per panel and per theorem; each
reports the measured ratio as a custom metric alongside ns/op and
allocations. Package-level micro-benchmarks cover the substrates and the
ablations DESIGN.md calls out:

- ` + "`internal/bmset`" + `: Fenwick-backed bounded multiset vs the naive O(k)
  bucket scan it replaces, at k=64 and k=1024.
- ` + "`internal/core`" + `: BenchmarkInvariantCheckingOverhead (the
  CheckInvariants flag) vs the plain step loop.
- ` + "`internal/experiments`" + `: BenchmarkAblationLWDTieBreak — LWD with
  largest-work vs smallest-work tie-breaking; the accompanying test
  asserts the choice moves the empirical ratio by < 5%. The TVD ablation
  (TestAblationTVDVsMRD) executes the paper's "total value per queue is a
  poor choice" argument; the NHDTW probe (TestNHDTWOnTheorem3Construction)
  records a negative result on the paper's NHDT-generalization question.
- ` + "`internal/policy`" + `: per-packet Admit cost of every policy in
  every model on a full 64-port switch.

See bench_output.txt for a recorded run.
`
