package report

import (
	"strings"
	"testing"

	"smbm/internal/experiments"
)

func TestGenerate(t *testing.T) {
	var b strings.Builder
	err := Generate(&b, experiments.Options{
		Slots:      400,
		Seeds:      1,
		Sources:    30,
		FlushEvery: 200,
		BaseSeed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wants := []string{
		"# EXPERIMENTS — paper vs. measured",
		"## Lower-bound theorems",
		"Theorem 11",
		"### fig5.1 — competitive ratio vs k",
		"### fig5.9 — competitive ratio vs C",
		"## Architecture comparison",
		"1Q-PQ-pushout",
		"## Latency trade-off",
		"## Benchmarks",
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("document missing %q", want)
		}
	}
	// Every panel carries its analysis.
	if got := strings.Count(out, "Paper:"); got < 9 {
		t.Errorf("only %d per-panel analyses", got)
	}
	// Every panel id has an analysis entry (no silent nil lookups).
	for _, id := range experiments.PanelIDs() {
		if analyses[id] == "" {
			t.Errorf("no analysis text for %s", id)
		}
	}
}
