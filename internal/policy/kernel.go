package policy

import (
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// This file holds the two generic admission kernels every roster policy
// instantiates — the single admit/push-out skeleton the unified engine
// exposes across the processing, value and combined models. A policy
// supplies its cost trait as a small rule struct (its per-packet
// admission predicate or its push-out victim ordering, with the
// FastView slices hoisted at construction); the kernels own the shared
// skeleton: the free-space prefix, the burst-suffix wholesale drop,
// the engine drop memo, and the accept/drop/push-out bookkeeping.
//
// Rules are value types and the kernels are generic over them, so the
// compiler stencils one loop per rule with static dispatch — the batch
// hot paths stay allocation-free under the benchjson zero-alloc gate.
//
// The same rule structs back the per-packet Admit FastView fast paths
// (see victimDecision), so each victim ordering and threshold
// expression exists exactly once; the plain-View scans in each
// policy's Admit remain the executable reference the differential
// suites replay against both.

// thresholdRule is the cost trait of a non-push-out policy: a pure
// admission predicate over the rule's hoisted state and the arriving
// packet. memo reports whether congested drops may be memoized in the
// engine's drop-memo table (profitable only when admit is O(n)).
type thresholdRule interface {
	//smb:hotpath
	admit(p pkt.Packet) bool
	//smb:hotpath
	memo() bool
}

// thresholdBatch decides a burst under a non-push-out rule: free space
// never grows during an arrival phase, so once it is exhausted the
// remaining suffix drops wholesale.
//
//smb:hotpath
func thresholdBatch[R thresholdRule](b *core.Batch, ps []pkt.Packet, r R) {
	free := b.Free()
	m := r.memo() // constant per rule: hoisted off the per-packet path
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if m && b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		if r.admit(p) {
			b.Accept(p)
			free--
		} else if m {
			b.DropMemo(p)
		} else {
			b.Drop(p)
		}
	}
}

// victimRule is the cost trait of a push-out policy: given a congested
// arrival, the queue to push out of, or -1 to drop the arrival. The
// rule encodes the whole victim ordering — drop-candidate ranking,
// virtual add of the arrival, own-queue displacement guards. memo as
// in thresholdRule.
type victimRule interface {
	//smb:hotpath
	victim(p pkt.Packet) int
	//smb:hotpath
	memo() bool
}

// pushOutBatch decides a burst under a push-out rule: the free-space
// prefix is accepted without any policy evaluation, and every
// congested arrival resolves through the rule's victim ordering (with
// the engine drop memo collapsing repeated identical drops when the
// rule opts in).
//
//smb:hotpath
func pushOutBatch[R victimRule](b *core.Batch, ps []pkt.Packet, r R) {
	free := b.Free()
	m := r.memo() // constant per rule: hoisted off the per-packet path
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		if m {
			if b.KnownDrop(p) {
				b.Drop(p)
				continue
			}
			if j := r.victim(p); j >= 0 {
				b.PushOut(j, p)
			} else {
				b.DropMemo(p)
			}
			continue
		}
		if j := r.victim(p); j >= 0 {
			b.PushOut(j, p)
		} else {
			b.Drop(p)
		}
	}
}

// victimDecision converts a victimRule result into a per-packet
// Decision; the Admit FastView fast paths share the rule structs with
// the batch kernels through it.
//
//smb:hotpath
func victimDecision(j int) core.Decision {
	if j >= 0 {
		return core.PushOut(j)
	}
	return core.Drop()
}
