package policy

import (
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// LQD is the classical Longest-Queue-Drop policy: on congestion, push out
// the tail packet of the longest queue (with the arriving packet counted
// virtually in its destination queue). Ties go to the queue with the
// largest required processing, i.e. the largest port index (ports are
// sorted by work). 2-competitive under uniform processing [Aiello et
// al.]; Theorem 4 shows it is ≥ √k − o(√k) under heterogeneous
// processing.
type LQD struct{}

// Name implements core.Policy.
func (LQD) Name() string { return "LQD" }

// lqdRule is LQD's victim ordering over the engine's incrementally
// maintained argmax: fold in the virtual arrival analytically. With
// real top (ti, tk) and p's queue at lens[i]+1: a strictly larger
// virtual length wins outright; an equal one wins only on the index
// tie-break; otherwise the real top stands (ti != i there, since
// lens[i] == tk would put the virtual length above tk). This
// reproduces LQD's reference scan exactly.
type lqdRule struct {
	f    core.FastView
	lens []int
}

// newLQDRule hoists the live length slice once.
func newLQDRule(f core.FastView) lqdRule { return lqdRule{f, f.QueueLens()} }

// victim implements victimRule.
//
//smb:hotpath
func (r lqdRule) victim(p pkt.Packet) int {
	i := p.Port
	ti, tk := r.f.LongestQueue()
	winner := ti
	if li := r.lens[i] + 1; li > tk || (li == tk && i > ti) {
		winner = i
	}
	if winner != i {
		return winner
	}
	return -1
}

// memo implements victimRule: a push-out alters the state, so memoized
// drops would rarely survive, and the argmax query is O(1) anyway.
func (lqdRule) memo() bool { return false }

// Admit implements core.Policy.
//
//smb:hotpath
func (LQD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newLQDRule(f).victim(p))
	}
	// Reference scan: the executable definition of the ordering, kept as
	// the fallback for foreign View implementations and replayed by the
	// differential tests against the shared rule above.
	i := p.Port
	longest, longestLen := -1, -1
	for j := 0; j < v.Ports(); j++ {
		l := v.QueueLen(j)
		if j == i {
			l++ // virtually add p
		}
		if l >= longestLen { // >= : ties resolve to the largest index
			longest, longestLen = j, l
		}
	}
	if longest != i {
		return core.PushOut(longest)
	}
	return core.Drop()
}

// BPD is the Biggest-Packet-Drop policy: on congestion, push out the tail
// of the non-empty queue with the largest processing requirement, but
// only when the arriving packet's port index does not exceed the victim's
// (i.e. its work requirement is no larger). Theorem 5: ≥ H_k ≥ ln k + γ
// competitive — aggressively minimizing buffered work starves ports.
type BPD struct{}

// Name implements core.Policy.
func (BPD) Name() string { return "BPD" }

// Admit implements core.Policy.
//
//smb:hotpath
func (BPD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	j := biggestNonEmpty(v, 1)
	if j >= 0 && p.Port <= j {
		return core.PushOut(j)
	}
	return core.Drop()
}

// BPD1 is the simulation-section variant of BPD that never pushes out the
// last packet of a queue, avoiding the artificial port-idling that makes
// plain BPD a poor heuristic: the victim is the largest-work queue
// holding at least two packets.
type BPD1 struct{}

// Name implements core.Policy.
func (BPD1) Name() string { return "BPD1" }

// Admit implements core.Policy.
//
//smb:hotpath
func (BPD1) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	j := biggestNonEmpty(v, 2)
	if j >= 0 && p.Port <= j {
		return core.PushOut(j)
	}
	return core.Drop()
}

// biggestNonEmpty returns the largest port index whose queue holds at
// least minLen packets, or -1. Ports are sorted by required work, so the
// largest index is the biggest processing requirement; among equal works
// the larger index is an arbitrary but fixed tie-break.
//
//smb:hotpath
func biggestNonEmpty(v core.View, minLen int) int {
	if f, ok := v.(core.FastView); ok {
		// Same top-down scan over the live length slice: no per-queue
		// interface dispatch on the admission hot path.
		lens := f.QueueLens()
		for j := len(lens) - 1; j >= 0; j-- {
			if lens[j] >= minLen {
				return j
			}
		}
		return -1
	}
	for j := v.Ports() - 1; j >= 0; j-- {
		if v.QueueLen(j) >= minLen {
			return j
		}
	}
	return -1
}

// LWD is the paper's main contribution, Longest-Work-Drop: on congestion,
// push out the tail of the queue with the largest total residual work
// (the arriving packet's work counted virtually in its destination
// queue). Ties go to the largest port index, mirroring LQD's
// largest-work tie-break. Theorem 7: at most 2-competitive; Theorems 6
// and the LQD equivalence give lower bounds of 4/3 − 6/B (contiguous
// case) and √2 (uniform works).
type LWD struct{}

// Name implements core.Policy.
func (LWD) Name() string { return "LWD" }

// lwdRule is lqdRule's mirror on the total-work key: the engine's real
// argmax plus the analytic virtual add of w_i.
type lwdRule struct {
	f      core.FastView
	qworks []int
	works  []int
}

// newLWDRule hoists the live work slices once.
//
//smb:hotpath
func newLWDRule(f core.FastView) lwdRule {
	return lwdRule{f, f.QueueTotalWorks(), f.PortWorks()}
}

// victim implements victimRule.
//
//smb:hotpath
func (r lwdRule) victim(p pkt.Packet) int {
	i := p.Port
	ti, tk := r.f.HeaviestQueue()
	winner := ti
	if wi := r.qworks[i] + r.works[i]; wi > tk || (wi == tk && i > ti) {
		winner = i
	}
	if winner != i {
		return winner
	}
	return -1
}

// memo implements victimRule (see lqdRule.memo).
func (lwdRule) memo() bool { return false }

// Admit implements core.Policy.
//
//smb:hotpath
func (LWD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newLWDRule(f).victim(p))
	}
	i := p.Port
	heaviest, heaviestWork := -1, -1
	for j := 0; j < v.Ports(); j++ {
		w := v.QueueWork(j)
		if j == i {
			w += v.PortWork(i) // virtually add p
		}
		if w >= heaviestWork { // >= : ties resolve to the largest index
			heaviest, heaviestWork = j, w
		}
	}
	if heaviest != i {
		return core.PushOut(heaviest)
	}
	return core.Drop()
}

var (
	_ core.Policy = LQD{}
	_ core.Policy = BPD{}
	_ core.Policy = BPD1{}
	_ core.Policy = LWD{}
)
