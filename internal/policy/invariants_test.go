package policy

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// This file holds the cross-model invariant suite: conservation and
// engine-consistency properties every roster policy must satisfy on
// the unified engine, in all three models, plus the value-model
// greedy-maximization properties that motivated MVD.

// invariantCell is one (model, roster, packet generator) cell of the
// cross-model sweep.
type invariantCell struct {
	name     string
	cfg      core.Config
	policies []core.Policy
	gen      func(rng *rand.Rand, cfg core.Config) pkt.Packet
}

// invariantCells enumerates every model's roster (experimental
// policies included) over a small saturating configuration.
func invariantCells() []invariantCell {
	procCfg := core.Config{
		Model: core.ModelProcessing, Ports: 4, Buffer: 8, MaxLabel: 4,
		Speedup: 1, PortWork: core.ContiguousWorks(4), CheckInvariants: true,
	}
	valCfg := core.Config{
		Model: core.ModelValue, Ports: 4, Buffer: 8, MaxLabel: 8,
		Speedup: 1, CheckInvariants: true,
	}
	combCfg := core.Config{
		Model: core.ModelCombined, Ports: 4, Buffer: 8, MaxLabel: 8,
		Speedup: 1, PortWork: []int{1, 2, 3, 4}, CheckInvariants: true,
	}
	return []invariantCell{
		{
			name:     "processing",
			cfg:      procCfg,
			policies: append(ForProcessing(), Experimental()...),
			gen: func(rng *rand.Rand, cfg core.Config) pkt.Packet {
				port := rng.Intn(cfg.Ports)
				return pkt.NewWork(port, cfg.PortWork[port])
			},
		},
		{
			name:     "value",
			cfg:      valCfg,
			policies: append(ForValueByPort(), ValueExperimental()...),
			gen: func(rng *rand.Rand, cfg core.Config) pkt.Packet {
				return pkt.NewValue(rng.Intn(cfg.Ports), 1+rng.Intn(cfg.MaxLabel))
			},
		},
		{
			name:     "combined",
			cfg:      combCfg,
			policies: ForCombined(),
			gen: func(rng *rand.Rand, cfg core.Config) pkt.Packet {
				port := rng.Intn(cfg.Ports)
				return pkt.NewWorkValue(port, cfg.PortWork[port], 1+rng.Intn(cfg.MaxLabel))
			},
		},
	}
}

// TestQuickRosterInvariants drives every roster policy of every model
// through random saturating traffic with engine invariant checks
// enabled, then drains and checks the conservation identities:
// arrivals split exactly into accepts and drops, and accepted packets
// split exactly into transmissions and push-outs.
func TestQuickRosterInvariants(t *testing.T) {
	for _, cell := range invariantCells() {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				for _, pol := range cell.policies {
					sw := core.MustNew(cell.cfg, pol)
					for slot := 0; slot < 25; slot++ {
						burst := make([]pkt.Packet, rng.Intn(8))
						for i := range burst {
							burst[i] = cell.gen(rng, cell.cfg)
						}
						if err := sw.Step(burst); err != nil {
							t.Logf("%s: %v", pol.Name(), err)
							return false
						}
					}
					sw.Drain()
					st := sw.Stats()
					if st.Arrived != st.Accepted+st.Dropped {
						t.Logf("%s: arrived %d != accepted %d + dropped %d", pol.Name(), st.Arrived, st.Accepted, st.Dropped)
						return false
					}
					if st.Accepted != st.Transmitted+st.PushedOut {
						t.Logf("%s: accepted %d != transmitted %d + pushed out %d", pol.Name(), st.Accepted, st.Transmitted, st.PushedOut)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, qcfg(20)); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestQuickMVDKeepsTopValues: absent transmissions, MVD's buffer always
// holds exactly the B most valuable packets offered so far (the greedy
// value-maximization property that defines the policy). LQD, by
// contrast, must violate this on value-skewed input.
func TestQuickMVDKeepsTopValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := valCfg(6)
		sw := core.MustNew(cfg, MVD{})
		var offered []int
		for i := 0; i < 30; i++ {
			p := pkt.NewValue(rng.Intn(cfg.Ports), 1+rng.Intn(cfg.MaxLabel))
			offered = append(offered, p.Value)
			if err := sw.Arrive(p); err != nil {
				t.Log(err)
				return false
			}
		}
		// The View exposes aggregates, which pin the multiset well
		// enough: buffered total value must equal the sum of the top-B
		// offered values, and the buffered minimum must be their
		// minimum.
		sort.Sort(sort.Reverse(sort.IntSlice(offered)))
		top := offered
		if len(top) > cfg.Buffer {
			top = top[:cfg.Buffer]
		}
		var wantSum int64
		wantMin := top[len(top)-1]
		for _, v := range top {
			wantSum += int64(v)
		}
		var gotSum int64
		gotMin := 0
		for q := 0; q < cfg.Ports; q++ {
			gotSum += sw.QueueValueSum(q)
			if mv := sw.QueueMinValue(q); mv > 0 && (gotMin == 0 || mv < gotMin) {
				gotMin = mv
			}
		}
		return gotSum == wantSum && gotMin == wantMin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

// TestMVDBeatsLQDOnBufferedValue is the deterministic counterpart: after
// a value-skewed burst, MVD's buffer is strictly richer than LQD's.
func TestMVDBeatsLQDOnBufferedValue(t *testing.T) {
	cfg := valCfg(4)
	burst := []pkt.Packet{
		pkt.NewValue(0, 1), pkt.NewValue(0, 1), pkt.NewValue(0, 1), pkt.NewValue(0, 1),
		pkt.NewValue(1, 8), pkt.NewValue(1, 8), pkt.NewValue(1, 8), pkt.NewValue(1, 8),
	}
	mvd := core.MustNew(cfg, MVD{})
	lqd := core.MustNew(cfg, VLQD{})
	if err := mvd.ArriveBurst(burst); err != nil {
		t.Fatal(err)
	}
	if err := lqd.ArriveBurst(burst); err != nil {
		t.Fatal(err)
	}
	sum := func(sw *core.Switch) int64 {
		var s int64
		for q := 0; q < cfg.Ports; q++ {
			s += sw.QueueValueSum(q)
		}
		return s
	}
	if m, l := sum(mvd), sum(lqd); m != 32 || m <= l {
		t.Errorf("MVD buffered value %d (want 32), LQD %d", m, l)
	}
}

// TestRVDEvictsWorkDenseQueue pins RVD's ordering in the combined
// model: the victim is the queue buffering the most work per unit of
// value, not the longest or the most work-laden in absolute terms.
func TestRVDEvictsWorkDenseQueue(t *testing.T) {
	cfg := core.Config{
		Model: core.ModelCombined, Ports: 4, Buffer: 6, MaxLabel: 8,
		Speedup: 1, PortWork: []int{1, 1, 4, 4},
	}
	sw := core.MustNew(cfg, RVD{})
	// Queue 2: 3 packets of work 4, value 1 each -> W=12, V=3, ratio 4.
	// Queue 3: 3 packets of work 4, value 8 each -> W=12, V=24, ratio 0.5.
	for i := 0; i < 3; i++ {
		if err := sw.Arrive(pkt.NewWorkValue(2, 4, 1)); err != nil {
			t.Fatal(err)
		}
		if err := sw.Arrive(pkt.NewWorkValue(3, 4, 8)); err != nil {
			t.Fatal(err)
		}
	}
	d := (RVD{}).Admit(sw, pkt.NewWorkValue(0, 1, 5))
	if !d.Push || d.Victim != 2 {
		t.Errorf("got %+v, want push-out from the work-dense queue 2", d)
	}
	// An arrival cheaper than the global minimum is dropped instead.
	if d := (RVD{}).Admit(sw, pkt.NewWorkValue(0, 1, 1)); !d.Push && d.Accept {
		t.Errorf("got %+v, want non-accept", d)
	}
}

// TestCombinedRosterAgainstGreedy sanity-checks the combined objective
// plumbing end to end: every combined push-out policy must deliver at
// least as much value as it would transmitting nothing, and the stats'
// value-per-cycle figure must be consistent with its parts.
func TestCombinedRosterAgainstGreedy(t *testing.T) {
	cfg := core.Config{
		Model: core.ModelCombined, Ports: 4, Buffer: 8, MaxLabel: 8,
		Speedup: 1, PortWork: []int{1, 2, 3, 4}, CheckInvariants: true,
	}
	rng := rand.New(rand.NewSource(11))
	slots := make([][]pkt.Packet, 40)
	for s := range slots {
		burst := make([]pkt.Packet, rng.Intn(6))
		for i := range burst {
			port := rng.Intn(cfg.Ports)
			burst[i] = pkt.NewWorkValue(port, cfg.PortWork[port], 1+rng.Intn(cfg.MaxLabel))
		}
		slots[s] = burst
	}
	for _, pol := range ForCombined() {
		sw := core.MustNew(cfg, pol)
		for _, burst := range slots {
			if err := sw.Step(burst); err != nil {
				t.Fatalf("%s: %v", pol.Name(), err)
			}
		}
		sw.Drain()
		st := sw.Stats()
		if st.TransmittedValue <= 0 {
			t.Errorf("%s: transmitted value %d, want > 0", pol.Name(), st.TransmittedValue)
		}
		if st.Throughput(cfg.Model) != st.TransmittedValue {
			t.Errorf("%s: combined throughput %d != transmitted value %d", pol.Name(), st.Throughput(cfg.Model), st.TransmittedValue)
		}
		vpc := st.ValuePerCycle()
		want := float64(st.TransmittedValue) / float64(st.CyclesUsed)
		if fmt.Sprintf("%.9f", vpc) != fmt.Sprintf("%.9f", want) {
			t.Errorf("%s: value/cycle %v != %v", pol.Name(), vpc, want)
		}
	}
}
