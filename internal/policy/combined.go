package policy

import (
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// This file holds the combined work×value model's roster — the model
// the paper never studied, opened by the unified engine: packets carry
// both a per-port required work and an intrinsic value, queues are
// FIFO with tail push-out like the processing model, and the objective
// is the total (equivalently per-cycle, see core.Stats.ValuePerCycle)
// value transmitted.
//
// The length-based policies (Greedy, NEST, NHDT) and the work-ranked
// push-out family (LQD, LWD) carry over verbatim; MRD carries over
// because its ratio reads only lengths and value sums. RVD below is
// the genuinely combined hybrid: it ranks drop candidates by buffered
// work per buffered value, the cost×benefit ratio neither parent model
// can express.

// RVD (Ratio-Value-Drop) is the combined-model hybrid of LWD and MRD:
// on congestion, push out the tail of the queue maximizing
// W_j / V_j — total residual work per total buffered value, the
// arriving packet counted virtually in its own queue — i.e. evict
// where the buffer spends the most cycles per unit of value it will
// ever deliver. Ties on the ratio go to the queue holding the smaller
// minimum value, mirroring MRD. The MRD displacement guards carry
// over: a cross-queue push-out requires the arrival to be worth at
// least the cheapest buffered value anywhere, and a packet arriving
// for the max-ratio queue itself only displaces a strictly cheaper
// minimum.
//
// Under unit values the ratio degenerates to W_j/|Q_j|, evicting the
// queue with the largest average per-packet cost (a BPD-flavored
// ordering on buffered work); under unit works it degenerates to
// 1/avg value, evicting the value-poorest queue — the "normalized
// value" direction the paper conjectures constant-competitive for
// MRD. Only the combined model exercises both axes at once.
type RVD struct{}

// Name implements core.Policy.
func (RVD) Name() string { return "RVD" }

// rvdRule is RVD's victim ordering over the hoisted work, length,
// minimum and sum lanes.
type rvdRule struct {
	lens, qworks, works, mins []int
	sums                      []int64
}

// newRVDRule hoists the live slices once.
//
//smb:hotpath
func newRVDRule(f core.FastView) rvdRule {
	return rvdRule{f.QueueLens(), f.QueueTotalWorks(), f.PortWorks(), f.QueueMinValues(), f.QueueSums()}
}

// victim implements victimRule: W_j/V_j compared by cross-multiplying
// in int64 (W ≤ B·k and V ≤ B·k keep the products far from overflow).
//
//smb:hotpath
func (r rvdRule) victim(p pkt.Packet) int {
	victim := -1
	var bestW, bestV int64
	globalMin := 0
	for j := range r.lens {
		w, sum := int64(r.qworks[j]), r.sums[j]
		if j == p.Port {
			w += int64(r.works[j]) // virtually add p
			sum += int64(p.Value)
		}
		if sum == 0 {
			continue // empty even with the virtual add
		}
		mv := r.mins[j] // 0 on an empty queue: only possible for j == p.Port
		if mv > 0 && (globalMin == 0 || mv < globalMin) {
			globalMin = mv
		}
		switch {
		case victim == -1 || w*bestV > bestW*sum:
			victim, bestW, bestV = j, w, sum
		case w*bestV == bestW*sum && minOrInfSlices(r.lens, r.mins, j) < minOrInfSlices(r.lens, r.mins, victim):
			victim, bestW, bestV = j, w, sum
		}
	}
	if victim != p.Port {
		if globalMin <= p.Value {
			return victim
		}
		return -1
	}
	if r.lens[p.Port] > 0 && r.mins[p.Port] < p.Value {
		return p.Port
	}
	return -1
}

// memo implements victimRule (see vlqdRule.memo).
func (rvdRule) memo() bool { return true }

// Admit implements core.Policy.
//
//smb:hotpath
func (RVD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newRVDRule(f).victim(p))
	}
	victim := -1
	var bestW, bestV int64
	globalMin := 0
	for j := 0; j < v.Ports(); j++ {
		w, sum := int64(v.QueueWork(j)), v.QueueValueSum(j)
		if j == p.Port {
			w += int64(v.PortWork(j)) // virtually add p
			sum += int64(p.Value)
		}
		if sum == 0 {
			continue // empty even with the virtual add
		}
		mv := v.QueueMinValue(j) // 0 on an empty queue: only possible for j == p.Port
		if mv > 0 && (globalMin == 0 || mv < globalMin) {
			globalMin = mv
		}
		switch {
		case victim == -1 || w*bestV > bestW*sum:
			victim, bestW, bestV = j, w, sum
		case w*bestV == bestW*sum && minOrInf(v, j) < minOrInf(v, victim):
			victim, bestW, bestV = j, w, sum
		}
	}
	return mrdDecide(v, p, victim, globalMin)
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (RVD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newRVDRule(b.View()))
}

// ForCombined returns the combined work×value roster: the carried-over
// length- and work-based disciplines plus the value-aware push-out
// policies that remain meaningful under FIFO tail eviction, and the
// RVD hybrid.
func ForCombined() []core.Policy {
	return []core.Policy{
		Greedy{},
		NEST{},
		NHDT{},
		LQD{},
		LWD{},
		MRD{},
		RVD{},
	}
}

// CombinedByName returns the combined-model policy with the given Name,
// or nil.
func CombinedByName(name string) core.Policy {
	for _, p := range ForCombined() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

var (
	_ core.Policy      = RVD{}
	_ core.BatchPolicy = RVD{}
)
