package policy

import (
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// TVD (Total-Value-Drop) is the ablation behind the paper's design
// argument for MRD: "in the value case the total value per queue
// constitutes a poor choice but normalized value can potentially achieve
// constant competitiveness". TVD pushes out the cheapest packet of the
// queue holding the largest *total* value — the unnormalized analogue of
// MRD's |Q|/avg.
//
// The flaw the experiments expose: a queue is "rich" either because it is
// long or because its packets are valuable, so TVD raids exactly the
// high-value queues MVD-style policies try to protect. See
// TestAblationTVDVsMRD.
//
// Not part of the paper's roster.
type TVD struct{}

// Name implements core.Policy.
func (TVD) Name() string { return "TVD" }

// tvdRule is TVD's victim ordering over the hoisted length, minimum
// and sum lanes.
type tvdRule struct {
	lens, mins []int
	sums       []int64
}

// newTVDRule hoists the live slices once.
//
//smb:hotpath
func newTVDRule(f core.FastView) tvdRule {
	return tvdRule{f.QueueLens(), f.QueueMinValues(), f.QueueSums()}
}

// victim implements victimRule.
//
//smb:hotpath
func (r tvdRule) victim(p pkt.Packet) int {
	victim := -1
	var bestSum int64
	globalMin := 0
	for j, l := range r.lens {
		if l == 0 {
			continue
		}
		if mv := r.mins[j]; globalMin == 0 || mv < globalMin {
			globalMin = mv
		}
		if sum := r.sums[j]; victim == -1 || sum > bestSum {
			victim, bestSum = j, sum
		}
	}
	if victim != p.Port {
		if globalMin <= p.Value {
			return victim
		}
		return -1
	}
	if r.lens[p.Port] > 0 && r.mins[p.Port] < p.Value {
		return p.Port
	}
	return -1
}

// memo implements victimRule (see vlqdRule.memo).
func (tvdRule) memo() bool { return true }

// Admit implements core.Policy.
//
//smb:hotpath
func (TVD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newTVDRule(f).victim(p))
	}
	victim := -1
	var bestSum int64
	globalMin := 0
	for j := 0; j < v.Ports(); j++ {
		if v.QueueLen(j) == 0 {
			continue
		}
		mv := v.QueueMinValue(j)
		if globalMin == 0 || mv < globalMin {
			globalMin = mv
		}
		if sum := v.QueueValueSum(j); victim == -1 || sum > bestSum {
			victim, bestSum = j, sum
		}
	}
	return tvdDecide(v, p, victim, globalMin)
}

// tvdDecide turns TVD's max-sum scan result into a decision — the
// plain-View reference twin of tvdRule.victim's closing case split.
//
//smb:hotpath
func tvdDecide(v core.View, p pkt.Packet, victim, globalMin int) core.Decision {
	if victim != p.Port {
		if globalMin <= p.Value {
			return core.PushOut(victim)
		}
		return core.Drop()
	}
	if v.QueueLen(p.Port) > 0 && v.QueueMinValue(p.Port) < p.Value {
		return core.PushOut(p.Port)
	}
	return core.Drop()
}

var _ core.Policy = TVD{}

// ValueExperimental returns value-model policies beyond the paper's
// roster.
func ValueExperimental() []core.Policy {
	return []core.Policy{TVD{}}
}
