// Package policy implements the buffer management policies for all
// three switch models on the unified engine: Section III of the paper
// (heterogeneous processing requirements, roster ForProcessing),
// Section IV (heterogeneous packet values, rosters ForValueUniform and
// ForValueByPort), and the combined work×value model the unification
// opens (roster ForCombined). Model-agnostic length-based policies
// (Greedy, NEST, NHDT) are shared across every roster.
//
// Every policy is a pure core.Policy: it inspects the read-only switch
// view and returns a decision; the engine executes it. Tie-breaking rules
// follow the paper text and are documented per policy. Victim orderings
// and threshold predicates exist exactly once, as the rule structs the
// generic kernels in kernel.go and the Admit FastView fast paths share;
// each policy additionally keeps a plain-View scan as the executable
// reference the differential suites replay.
package policy

import "smbm/internal/core"

// ForProcessing returns the full roster of processing-model policies in
// the order used by the paper's Fig. 5 panels 1–3.
func ForProcessing() []core.Policy {
	return []core.Policy{
		Greedy{},
		NHST{},
		NEST{},
		NHDT{},
		LQD{},
		BPD{},
		BPD1{},
		LWD{},
	}
}

// ByName returns the processing-model policy with the given Name, or nil.
func ByName(name string) core.Policy {
	for _, p := range ForProcessing() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
