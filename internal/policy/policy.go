// Package policy implements the buffer management policies of Section III
// of the paper (heterogeneous processing requirements), plus the
// model-agnostic length-based policies (Greedy, NEST, NHDT) that the
// evaluation also runs in the value model.
//
// Every policy is a pure core.Policy: it inspects the read-only switch
// view and returns a decision; the engine executes it. Tie-breaking rules
// follow the paper text and are documented per policy.
package policy

import "smbm/internal/core"

// ForProcessing returns the full roster of processing-model policies in
// the order used by the paper's Fig. 5 panels 1–3.
func ForProcessing() []core.Policy {
	return []core.Policy{
		Greedy{},
		NHST{},
		NEST{},
		NHDT{},
		LQD{},
		BPD{},
		BPD1{},
		LWD{},
	}
}

// ByName returns the processing-model policy with the given Name, or nil.
func ByName(name string) core.Policy {
	for _, p := range ForProcessing() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}
