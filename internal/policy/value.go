package policy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// This file holds the value-model policies of Section IV of the paper
// (heterogeneous packet values, unit work, priority-queue output
// queues; objective: total transmitted value). Length-based policies
// that carry over unchanged from the processing model (Greedy, NEST,
// NHDT) are shared with the processing roster above.

// NHSTV is the value-model adaptation of the harmonic static thresholds
// for the value≡port special case: high values get the large thresholds,
// so a queue whose packets carry value v admits while
// |Q_i| < B/((k−v+1)·H_k). (The paper: "we reverse the thresholds to
// B/((k−i+1)H_k) for queue with value i".) The threshold is keyed on the
// arriving packet's value, which coincides with the port label in the
// intended special case.
type NHSTV struct{}

// Name implements core.Policy.
func (NHSTV) Name() string { return "NHSTV" }

// nhstvRule is NHSTV's admission predicate with H_k, the label ceiling
// and the buffer bound hoisted.
type nhstvRule struct {
	lens []int
	k    int
	hk   float64
	buf  float64
}

// newNHSTVRule hoists NHSTV's per-burst constants once.
//
//smb:hotpath
func newNHSTVRule(f core.FastView) nhstvRule {
	k := f.MaxLabel()
	return nhstvRule{f.QueueLens(), k, hmath.Harmonic(k), float64(f.Buffer())}
}

// admit implements thresholdRule:
// |Q_i| < B/((k−v+1)·H_k)  ⇔  |Q_i|·(k−v+1)·H_k < B. O(1) per arrival
// already: one length read plus a table-backed H_k lookup.
//
//smb:hotpath
func (r nhstvRule) admit(p pkt.Packet) bool {
	return float64(r.lens[p.Port])*float64(r.k-p.Value+1)*r.hk < r.buf
}

// memo implements thresholdRule: the predicate is O(1), cheaper than
// the memo probe it would replace.
func (nhstvRule) memo() bool { return false }

// Admit implements core.Policy.
//
//smb:hotpath
func (NHSTV) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	if f, ok := v.(core.FastView); ok {
		if newNHSTVRule(f).admit(p) {
			return core.Accept()
		}
		return core.Drop()
	}
	k := v.MaxLabel()
	lhs := float64(v.QueueLen(p.Port)) * float64(k-p.Value+1) * hmath.Harmonic(k)
	if lhs < float64(v.Buffer()) {
		return core.Accept()
	}
	return core.Drop()
}

// VLQD is Longest-Queue-Drop in the value model: on congestion it drops
// the lowest-value packet of the longest queue (the arriving packet
// counted virtually). When the arriving packet's own queue is the
// longest, the arriving packet competes with the queue's minimum: it is
// admitted in place of a strictly cheaper packet, otherwise dropped —
// either way the lowest value of the longest queue is what goes.
// Theorem 9: ≥ ∛k − o(∛k) competitive. Its reported Name stays "LQD",
// the paper's label; the Go identifier distinguishes it from the
// processing model's tail-dropping LQD.
type VLQD struct{}

// Name implements core.Policy.
func (VLQD) Name() string { return "LQD" }

// vlqdRule is VLQD's victim ordering over the hoisted length and
// minimum-value lanes.
type vlqdRule struct {
	lens, mins []int
}

// newVLQDRule hoists the live slices once.
//
//smb:hotpath
func newVLQDRule(f core.FastView) vlqdRule {
	return vlqdRule{f.QueueLens(), f.QueueMinValues()}
}

// victim implements victimRule.
//
//smb:hotpath
func (r vlqdRule) victim(p pkt.Packet) int {
	i := p.Port
	longest, longestLen := -1, -1
	for j, l := range r.lens {
		if j == i {
			l++ // virtually add p
		}
		switch {
		case l > longestLen:
			longest, longestLen = j, l
		case l == longestLen && r.mins[j] < r.mins[longest]:
			longest = j
		}
	}
	if longest != i {
		return longest
	}
	if r.lens[i] > 0 && r.mins[i] < p.Value {
		return i
	}
	return -1
}

// memo implements victimRule: the O(n) scan is worth collapsing when a
// congested burst keeps offering the same (port, value).
func (vlqdRule) memo() bool { return true }

// Admit implements core.Policy.
//
//smb:hotpath
func (VLQD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newVLQDRule(f).victim(p))
	}
	i := p.Port
	longest, longestLen := -1, -1
	for j := 0; j < v.Ports(); j++ {
		l := v.QueueLen(j)
		if j == i {
			l++ // virtually add p
		}
		switch {
		case l > longestLen:
			longest, longestLen = j, l
		case l == longestLen && v.QueueMinValue(j) < v.QueueMinValue(longest):
			// Ties: prefer evicting from the queue holding the cheaper
			// packet.
			longest = j
		}
	}
	if longest != i {
		return core.PushOut(longest)
	}
	if v.QueueLen(i) > 0 && v.QueueMinValue(i) < p.Value {
		return core.PushOut(i)
	}
	return core.Drop()
}

// MVD is Minimal-Value-Drop: on congestion, if the arriving packet beats
// the cheapest buffered packet, that cheapest packet (from the longest
// such queue on ties) is pushed out. Greedily maximizes admitted value;
// Theorem 10 shows it is ≥ (m−1)/2-competitive for m = min{k,B} because
// it starves all but the richest ports.
type MVD struct{}

// Name implements core.Policy.
func (MVD) Name() string { return "MVD" }

// MVD1 is the simulation-section variant of MVD that never pushes out the
// last packet of a queue, so an active port is never silenced by a single
// expensive arrival elsewhere.
type MVD1 struct{}

// Name implements core.Policy.
func (MVD1) Name() string { return "MVD1" }

// mvdRule is MVD's victim ordering with a minimum victim-queue length
// (1 for MVD, 2 for MVD1).
type mvdRule struct {
	lens, mins []int
	minLen     int
}

// newMVDRule hoists the live slices once.
//
//smb:hotpath
func newMVDRule(f core.FastView, minLen int) mvdRule {
	return mvdRule{f.QueueLens(), f.QueueMinValues(), minLen}
}

// victim implements victimRule.
//
//smb:hotpath
func (r mvdRule) victim(p pkt.Packet) int {
	victim, minVal := -1, 0
	for j, l := range r.lens {
		if l < r.minLen {
			continue
		}
		mv := r.mins[j]
		switch {
		case victim == -1 || mv < minVal:
			victim, minVal = j, mv
		case mv == minVal && l > r.lens[victim]:
			// Ties: the longest queue among those holding the minimum.
			victim = j
		}
	}
	if victim >= 0 && minVal < p.Value {
		return victim
	}
	return -1
}

// memo implements victimRule (see vlqdRule.memo).
func (mvdRule) memo() bool { return true }

// Admit implements core.Policy.
//
//smb:hotpath
func (MVD) Admit(v core.View, p pkt.Packet) core.Decision {
	return mvdAdmit(v, p, 1)
}

// Admit implements core.Policy.
//
//smb:hotpath
func (MVD1) Admit(v core.View, p pkt.Packet) core.Decision {
	return mvdAdmit(v, p, 2)
}

// mvdAdmit implements MVD with a minimum victim-queue length (1 for MVD,
// 2 for MVD1).
//
//smb:hotpath
func mvdAdmit(v core.View, p pkt.Packet, minLen int) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newMVDRule(f, minLen).victim(p))
	}
	victim, minVal := -1, 0
	for j := 0; j < v.Ports(); j++ {
		if v.QueueLen(j) < minLen {
			continue
		}
		mv := v.QueueMinValue(j)
		switch {
		case victim == -1 || mv < minVal:
			victim, minVal = j, mv
		case mv == minVal && v.QueueLen(j) > v.QueueLen(victim):
			// Ties: the longest queue among those holding the minimum.
			victim = j
		}
	}
	if victim >= 0 && minVal < p.Value {
		return core.PushOut(victim)
	}
	return core.Drop()
}

// MRD is the paper's Maximal-Ratio-Drop, the conjectured
// constant-competitive policy: on congestion, push out the cheapest
// packet of the queue maximizing |Q_j|/a_j (a_j the average value in
// Q_j, the arriving packet counted virtually in its own queue), provided
// the arriving packet is worth at least the cheapest value anywhere in
// the buffer. Ties on the ratio go to the queue holding the smaller
// minimum value.
//
// The paper's case split leaves "minimal admitted value == m"
// unspecified; equality must push for the stated property "MRD emulates
// LQD in case all packets have unit values" to hold (under unit values
// the minimum always equals the arrival), so that is the behaviour here
// — except that a packet arriving for the max-ratio queue itself only
// displaces a strictly cheaper minimum, mirroring LQD's i = j* drop.
// The LQD equivalence transfers the √2 lower bound; Theorem 11 gives
// ≥ 4/3 in the value≡port case.
type MRD struct{}

// Name implements core.Policy.
func (MRD) Name() string { return "MRD" }

// mrdRule is MRD's victim ordering over the hoisted length, minimum
// and sum lanes.
type mrdRule struct {
	lens, mins []int
	sums       []int64
}

// newMRDRule hoists the live slices once.
//
//smb:hotpath
func newMRDRule(f core.FastView) mrdRule {
	return mrdRule{f.QueueLens(), f.QueueMinValues(), f.QueueSums()}
}

// victim implements victimRule:
// |Q_j|/a_j = |Q_j|²/sum_j; compare fractions by cross-multiplying
// in int64 (|Q| ≤ B, sums ≤ B·k keep this far from overflow).
//
//smb:hotpath
func (r mrdRule) victim(p pkt.Packet) int {
	victim := -1
	var bestNum, bestDen int64
	globalMin := 0
	for j := range r.lens {
		l, sum := int64(r.lens[j]), r.sums[j]
		if j == p.Port {
			l++ // virtually add p
			sum += int64(p.Value)
		}
		if l == 0 {
			continue
		}
		mv := r.mins[j] // 0 on an empty queue: only possible for j == p.Port
		if mv > 0 && (globalMin == 0 || mv < globalMin) {
			globalMin = mv
		}
		num, den := l*l, sum
		switch {
		case victim == -1 || num*bestDen > bestNum*den:
			victim, bestNum, bestDen = j, num, den
		case num*bestDen == bestNum*den && minOrInfSlices(r.lens, r.mins, j) < minOrInfSlices(r.lens, r.mins, victim):
			victim, bestNum, bestDen = j, num, den
		}
	}
	if victim != p.Port {
		if globalMin <= p.Value {
			return victim
		}
		return -1
	}
	if r.lens[p.Port] > 0 && r.mins[p.Port] < p.Value {
		return p.Port
	}
	return -1
}

// memo implements victimRule (see vlqdRule.memo).
func (mrdRule) memo() bool { return true }

// Admit implements core.Policy.
//
//smb:hotpath
func (MRD) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	if f, ok := v.(core.FastView); ok {
		return victimDecision(newMRDRule(f).victim(p))
	}
	victim := -1
	var bestNum, bestDen int64
	globalMin := 0
	for j := 0; j < v.Ports(); j++ {
		l, sum := int64(v.QueueLen(j)), v.QueueValueSum(j)
		if j == p.Port {
			l++ // virtually add p
			sum += int64(p.Value)
		}
		if l == 0 {
			continue
		}
		mv := v.QueueMinValue(j) // 0 on an empty queue: only possible for j == p.Port
		if mv > 0 && (globalMin == 0 || mv < globalMin) {
			globalMin = mv
		}
		num, den := l*l, sum
		switch {
		case victim == -1 || num*bestDen > bestNum*den:
			victim, bestNum, bestDen = j, num, den
		case num*bestDen == bestNum*den && minOrInf(v, j) < minOrInf(v, victim):
			victim, bestNum, bestDen = j, num, den
		}
	}
	return mrdDecide(v, p, victim, globalMin)
}

// mrdDecide turns MRD's max-ratio scan result into a decision — the
// plain-View reference twin of mrdRule.victim's closing case split.
//
//smb:hotpath
func mrdDecide(v core.View, p pkt.Packet, victim, globalMin int) core.Decision {
	if victim != p.Port {
		if globalMin <= p.Value {
			return core.PushOut(victim)
		}
		return core.Drop()
	}
	if v.QueueLen(p.Port) > 0 && v.QueueMinValue(p.Port) < p.Value {
		return core.PushOut(p.Port)
	}
	return core.Drop()
}

// minOrInf returns the queue's minimum value, treating an empty queue as
// unbeatably expensive for tie-breaking.
//
//smb:hotpath
func minOrInf(v core.View, j int) int {
	if v.QueueLen(j) == 0 {
		return int(^uint(0) >> 1)
	}
	return v.QueueMinValue(j)
}

// minOrInfSlices is minOrInf over the FastView slices.
//
//smb:hotpath
func minOrInfSlices(lens, mins []int, j int) int {
	if lens[j] == 0 {
		return int(^uint(0) >> 1)
	}
	return mins[j]
}

// ForValueUniform returns the roster of Fig. 5 panels 4–6: the value
// model with both output port and value chosen uniformly at random.
func ForValueUniform() []core.Policy {
	return []core.Policy{
		Greedy{},
		NEST{},
		NHDT{},
		VLQD{},
		MVD{},
		MVD1{},
		MRD{},
	}
}

// ForValueByPort returns the roster of Fig. 5 panels 7–9: the special
// case where a packet's value is uniquely determined by its output port,
// which adds the reversed-threshold NHSTV.
func ForValueByPort() []core.Policy {
	return []core.Policy{
		Greedy{},
		NHSTV{},
		NEST{},
		NHDT{},
		VLQD{},
		MVD{},
		MVD1{},
		MRD{},
	}
}

// ValueByName returns the value-model policy with the given Name, or nil.
func ValueByName(name string) core.Policy {
	for _, p := range ForValueByPort() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

var (
	_ core.Policy = NHSTV{}
	_ core.Policy = VLQD{}
	_ core.Policy = MVD{}
	_ core.Policy = MVD1{}
	_ core.Policy = MRD{}
)
