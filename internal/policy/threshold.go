package policy

import (
	"smbm/internal/core"
	"smbm/internal/pkt"
)

// StaticThreshold accepts a packet for port i while |Q_i| < T[i] and the
// buffer has room; ports beyond len(T) are rejected. It is the scripted
// building block for the clairvoyant OPT strategies in the paper's
// lower-bound proofs ("accept one packet of each large kind and fill the
// rest with 1s") and also generalizes NEST (T[i] = B/n for all i).
type StaticThreshold struct {
	// Label is the reported Name (defaults to "Threshold").
	Label string
	// T holds the per-port admission thresholds.
	T []int
}

// Name implements core.Policy.
func (s StaticThreshold) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "Threshold"
}

// Admit implements core.Policy.
//
//smb:hotpath
func (s StaticThreshold) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	if p.Port < len(s.T) && v.QueueLen(p.Port) < s.T[p.Port] {
		return core.Accept()
	}
	return core.Drop()
}

var _ core.Policy = StaticThreshold{}
