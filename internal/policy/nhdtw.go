package policy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// NHDTW is an exploratory probe at the paper's future-work question
// ("it is unclear how to generalize NHDT to heterogeneous processing
// better"): harmonic dynamic thresholds ranked by buffered *work*
// instead of queue length, mirroring the LQD→LWD fix.
//
// On arrival to port i, let m be the number of queues whose total
// residual work is at least Q_i's (the arrival counted virtually);
// accept while the total packet count of those m queues stays below
// (B/H_n)·H_m.
//
// Negative result (kept as an executable record): on the Theorem 3
// arrival script the ranking change does not help — the attack presents
// queues whose length order and work order coincide, so the binding
// constraint is the harmonic packet budget itself, not the ranking.
// This corroborates the paper's remark that the right generalization is
// genuinely unclear. See TestNHDTWOnTheorem3Construction.
//
// Not part of the paper's roster.
type NHDTW struct{}

// Name implements core.Policy.
func (NHDTW) Name() string { return "NHDTW" }

// Admit implements core.Policy.
//
//smb:hotpath
func (NHDTW) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	var m, sum int
	if f, ok := v.(core.FastView); ok {
		works, lens := f.QueueTotalWorks(), f.QueueLens()
		pw := f.PortWorks()[p.Port]
		wi := works[p.Port] + pw // virtual add
		for j, w := range works {
			if j == p.Port {
				w += pw
			}
			if w >= wi {
				m++
				sum += lens[j]
			}
		}
	} else {
		wi := v.QueueWork(p.Port) + v.PortWork(p.Port) // virtual add
		for j := 0; j < v.Ports(); j++ {
			w := v.QueueWork(j)
			if j == p.Port {
				w += v.PortWork(p.Port)
			}
			if w >= wi {
				m++
				sum += v.QueueLen(j)
			}
		}
	}
	threshold := float64(v.Buffer()) * hmath.Harmonic(m) / hmath.Harmonic(v.Ports())
	if float64(sum) < threshold {
		return core.Accept()
	}
	return core.Drop()
}

var _ core.Policy = NHDTW{}

// Experimental returns policies beyond the paper's roster, kept separate
// so the reproduction experiments stay faithful.
func Experimental() []core.Policy {
	return []core.Policy{NHDTW{}}
}
