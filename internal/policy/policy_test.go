package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// testCfg is a 4-port switch with works {1,2,3,6} and buffer 12: Z = 2,
// so the NHST thresholds are the round numbers 6, 3, 2, 1.
func testCfg() core.Config {
	return core.Config{
		Model:    core.ModelProcessing,
		Ports:    4,
		Buffer:   12,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 6},
	}
}

// fill builds a switch whose queues hold the given packet counts.
func fill(t *testing.T, cfg core.Config, lens []int) *core.Switch {
	t.Helper()
	sw := core.MustNew(cfg, Greedy{})
	for port, n := range lens {
		for i := 0; i < n; i++ {
			var p pkt.Packet
			if cfg.Model == core.ModelValue {
				p = pkt.NewValue(port, 1)
			} else {
				p = pkt.NewWork(port, cfg.PortWork[port])
			}
			if err := sw.Arrive(p); err != nil {
				t.Fatalf("fill: %v", err)
			}
		}
	}
	return sw
}

func TestGreedy(t *testing.T) {
	sw := fill(t, testCfg(), []int{11, 0, 0, 0})
	if d := (Greedy{}).Admit(sw, pkt.NewWork(1, 2)); !d.Accept || d.Push {
		t.Errorf("greedy with free space: %+v", d)
	}
	sw = fill(t, testCfg(), []int{12, 0, 0, 0})
	if d := (Greedy{}).Admit(sw, pkt.NewWork(1, 2)); d.Accept {
		t.Errorf("greedy with full buffer: %+v", d)
	}
}

func TestNHSTThresholds(t *testing.T) {
	// Thresholds: port 0: 12/(1·2)=6, port 1: 3, port 2: 2, port 3: 1.
	cases := []struct {
		port, len int
		want      bool
	}{
		{0, 5, true},
		{0, 6, false},
		{1, 2, true},
		{1, 3, false},
		{2, 1, true},
		{2, 2, false},
		{3, 0, true},
		{3, 1, false},
	}
	for _, c := range cases {
		lens := make([]int, 4)
		lens[c.port] = c.len
		sw := fill(t, testCfg(), lens)
		p := pkt.NewWork(c.port, testCfg().PortWork[c.port])
		if d := (NHST{}).Admit(sw, p); d.Accept != c.want {
			t.Errorf("NHST port %d len %d: accept=%v, want %v", c.port, c.len, d.Accept, c.want)
		}
	}
}

func TestNHSTDropsWhenFull(t *testing.T) {
	sw := fill(t, testCfg(), []int{6, 3, 2, 1})
	if d := (NHST{}).Admit(sw, pkt.NewWork(3, 6)); d.Accept {
		t.Errorf("NHST with full buffer accepted: %+v", d)
	}
}

func TestNESTThreshold(t *testing.T) {
	// B/n = 3 per queue.
	sw := fill(t, testCfg(), []int{2, 0, 0, 0})
	if d := (NEST{}).Admit(sw, pkt.NewWork(0, 1)); !d.Accept {
		t.Error("NEST below threshold rejected")
	}
	sw = fill(t, testCfg(), []int{3, 0, 0, 0})
	if d := (NEST{}).Admit(sw, pkt.NewWork(0, 1)); d.Accept {
		t.Error("NEST at threshold accepted")
	}
}

func TestNHDT(t *testing.T) {
	// n=4: H_4 = 2.0833, H_1 = 1, H_2 = 1.5, H_3 = 1.8333.
	cfg := testCfg()

	// Queues [3,2,1,0], arrival to port 2 (len 1): m=3 queues with
	// len>=1, sum=6, threshold 12·H_3/H_4 = 10.56 -> accept.
	sw := fill(t, cfg, []int{3, 2, 1, 0})
	if d := (NHDT{}).Admit(sw, pkt.NewWork(2, 3)); !d.Accept {
		t.Error("NHDT moderate state rejected")
	}

	// Queues [6,5,0,0], arrival to port 0 (len 6): m=1, sum=6,
	// threshold 12·1/2.0833 = 5.76 -> reject.
	sw = fill(t, cfg, []int{6, 5, 0, 0})
	if d := (NHDT{}).Admit(sw, pkt.NewWork(0, 1)); d.Accept {
		t.Error("NHDT over single-queue threshold accepted")
	}

	// Same buffer, arrival to port 2 (len 0): every queue counts
	// (m=4), sum=11 < 12 -> accept.
	if d := (NHDT{}).Admit(sw, pkt.NewWork(2, 3)); !d.Accept {
		t.Error("NHDT empty-queue arrival rejected")
	}

	// Full buffer always drops.
	sw = fill(t, cfg, []int{6, 6, 0, 0})
	if d := (NHDT{}).Admit(sw, pkt.NewWork(2, 3)); d.Accept {
		t.Error("NHDT with full buffer accepted")
	}
}

func TestLQD(t *testing.T) {
	cfg := testCfg()

	t.Run("accepts with free space", func(t *testing.T) {
		sw := fill(t, cfg, []int{1, 1, 0, 0})
		if d := (LQD{}).Admit(sw, pkt.NewWork(2, 3)); !d.Accept || d.Push {
			t.Errorf("got %+v", d)
		}
	})

	t.Run("pushes out the longest queue", func(t *testing.T) {
		sw := fill(t, cfg, []int{7, 3, 1, 1})
		d := (LQD{}).Admit(sw, pkt.NewWork(1, 2))
		if !d.Accept || !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0", d)
		}
	})

	t.Run("drops when own queue is longest", func(t *testing.T) {
		sw := fill(t, cfg, []int{8, 2, 1, 1})
		if d := (LQD{}).Admit(sw, pkt.NewWork(0, 1)); d.Accept {
			t.Errorf("got %+v, want drop", d)
		}
	})

	t.Run("virtual add breaks toward arrival queue length", func(t *testing.T) {
		// Queue 0 has 6, queue 1 has 6: arrival for queue 1 makes it
		// virtually 7, the strict maximum, so i == j* and p is dropped.
		sw := fill(t, cfg, []int{6, 6, 0, 0})
		if d := (LQD{}).Admit(sw, pkt.NewWork(1, 2)); d.Accept {
			t.Errorf("got %+v, want drop", d)
		}
	})

	t.Run("length ties go to the largest work", func(t *testing.T) {
		// Queues 1 and 2 tie at 5; arrival for port 0 must evict from
		// queue 2 (larger required processing).
		sw := fill(t, cfg, []int{2, 5, 5, 0})
		d := (LQD{}).Admit(sw, pkt.NewWork(0, 1))
		if !d.Push || d.Victim != 2 {
			t.Errorf("got %+v, want push-out from 2", d)
		}
	})
}

func TestBPD(t *testing.T) {
	cfg := testCfg()

	t.Run("pushes out the biggest nonempty queue", func(t *testing.T) {
		sw := fill(t, cfg, []int{10, 1, 1, 0})
		// Port 3 is empty; the biggest nonempty is port 2 (work 3).
		d := (BPD{}).Admit(sw, pkt.NewWork(0, 1))
		if !d.Push || d.Victim != 2 {
			t.Errorf("got %+v, want push-out from 2", d)
		}
	})

	t.Run("drops arrivals bigger than every buffered packet", func(t *testing.T) {
		sw := fill(t, cfg, []int{12, 0, 0, 0})
		if d := (BPD{}).Admit(sw, pkt.NewWork(1, 2)); d.Accept {
			t.Errorf("got %+v, want drop (arrival port 1 > victim port 0)", d)
		}
	})

	t.Run("equal port may self-replace", func(t *testing.T) {
		sw := fill(t, cfg, []int{12, 0, 0, 0})
		d := (BPD{}).Admit(sw, pkt.NewWork(0, 1))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0", d)
		}
	})
}

func TestBPD1KeepsLastPacket(t *testing.T) {
	cfg := testCfg()
	// Port 3 holds one packet: BPD would evict it, BPD1 must not.
	sw := fill(t, cfg, []int{9, 2, 0, 1})
	if d := (BPD{}).Admit(sw, pkt.NewWork(0, 1)); !d.Push || d.Victim != 3 {
		t.Errorf("BPD got %+v, want push-out from 3", d)
	}
	if d := (BPD1{}).Admit(sw, pkt.NewWork(0, 1)); !d.Push || d.Victim != 1 {
		t.Errorf("BPD1 got %+v, want push-out from 1 (len >= 2)", d)
	}
	// All queues at length 1: BPD1 has no victim and drops.
	sw = fill(t, core.Config{
		Model: core.ModelProcessing, Ports: 4, Buffer: 4, MaxLabel: 6,
		Speedup: 1, PortWork: []int{1, 2, 3, 6},
	}, []int{1, 1, 1, 1})
	if d := (BPD1{}).Admit(sw, pkt.NewWork(0, 1)); d.Accept {
		t.Errorf("BPD1 with all-singleton queues got %+v, want drop", d)
	}
}

func TestLWD(t *testing.T) {
	cfg := testCfg()

	t.Run("pushes out the most total work", func(t *testing.T) {
		// Work: q0 = 4·1 = 4, q1 = 3·2 = 6, q2 = 1·3 = 3, q3 = 6.
		// Tie between q1 and q3 resolves to the larger index.
		sw := fill(t, cfg, []int{4, 3, 1, 1})
		for sw.Free() > 0 { // top up queue 0 to fill the buffer
			if err := sw.Arrive(pkt.NewWork(0, 1)); err != nil {
				t.Fatal(err)
			}
		}
		// Now q0 has 7 packets = 7 work: the maximum is q0.
		d := (LWD{}).Admit(sw, pkt.NewWork(2, 3))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0 (7 cycles buffered)", d)
		}
	})

	t.Run("virtual add counts the arrival's work", func(t *testing.T) {
		// q0 = 8 work, q3 = 6 work; an arrival for q3 counts virtually
		// 6+6 = 12 > 8, so j* = 3 = i and the packet is dropped.
		sw := fill(t, cfg, []int{8, 1, 0, 1})
		for sw.Free() > 0 {
			if err := sw.Arrive(pkt.NewWork(1, 2)); err != nil {
				t.Fatal(err)
			}
		}
		if d := (LWD{}).Admit(sw, pkt.NewWork(3, 6)); d.Accept {
			t.Errorf("got %+v, want drop", d)
		}
	})

	t.Run("uniform works reduce LWD to LQD", func(t *testing.T) {
		cfg := core.Config{
			Model: core.ModelProcessing, Ports: 3, Buffer: 9, MaxLabel: 2,
			Speedup: 1, PortWork: []int{2, 2, 2},
		}
		rng := rand.New(rand.NewSource(11))
		for trial := 0; trial < 50; trial++ {
			lens := []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
			total := lens[0] + lens[1] + lens[2]
			if total < cfg.Buffer {
				lens[0] += cfg.Buffer - total // force a full buffer
			}
			sw := fill(t, cfg, lens)
			p := pkt.NewWork(rng.Intn(3), 2)
			dl := (LQD{}).Admit(sw, p)
			dw := (LWD{}).Admit(sw, p)
			if dl != dw {
				t.Fatalf("lens %v arrival %v: LQD %+v != LWD %+v", lens, p, dl, dw)
			}
		}
	})
}

func TestStaticThreshold(t *testing.T) {
	cfg := testCfg()
	st := StaticThreshold{Label: "opt", T: []int{2, 0, 1, 12}}
	if st.Name() != "opt" {
		t.Errorf("Name() = %q", st.Name())
	}
	if (StaticThreshold{}).Name() != "Threshold" {
		t.Errorf("default Name() = %q", StaticThreshold{}.Name())
	}
	sw := fill(t, cfg, []int{1, 0, 0, 0})
	if d := st.Admit(sw, pkt.NewWork(0, 1)); !d.Accept {
		t.Error("below threshold rejected")
	}
	sw = fill(t, cfg, []int{2, 0, 0, 0})
	if d := st.Admit(sw, pkt.NewWork(0, 1)); d.Accept {
		t.Error("at threshold accepted")
	}
	if d := st.Admit(sw, pkt.NewWork(1, 2)); d.Accept {
		t.Error("zero threshold accepted")
	}
	// Ports beyond len(T) are rejected.
	short := StaticThreshold{T: []int{5}}
	if d := short.Admit(sw, pkt.NewWork(2, 3)); d.Accept {
		t.Error("port beyond thresholds accepted")
	}
}

func TestRegistry(t *testing.T) {
	all := ForProcessing()
	if len(all) != 8 {
		t.Fatalf("ForProcessing returned %d policies, want 8", len(all))
	}
	seen := map[string]bool{}
	for _, p := range all {
		if seen[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		seen[p.Name()] = true
		if got := ByName(p.Name()); got == nil || got.Name() != p.Name() {
			t.Errorf("ByName(%q) = %v", p.Name(), got)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) != nil")
	}
}

// TestQuickGreedyWhenSpace: every paper policy accepts any packet when
// the buffer has free space (they are all greedy in the paper's sense),
// and only push-out policies ever request eviction.
func TestQuickGreedyWhenSpace(t *testing.T) {
	pushOut := map[string]bool{"LQD": true, "BPD": true, "BPD1": true, "LWD": true}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testCfg()
		lens := make([]int, cfg.Ports)
		budget := rng.Intn(cfg.Buffer) // strictly less than B in total
		for i := 0; budget > 0; i = (i + 1) % cfg.Ports {
			take := rng.Intn(budget + 1)
			lens[i] += take
			budget -= take
		}
		sw := fill(t, cfg, lens)
		port := rng.Intn(cfg.Ports)
		p := pkt.NewWork(port, cfg.PortWork[port])
		for _, pol := range ForProcessing() {
			d := pol.Admit(sw, p)
			switch pol.Name() {
			case "Greedy", "LQD", "BPD", "BPD1", "LWD":
				if !d.Accept {
					t.Logf("%s rejected with free space", pol.Name())
					return false
				}
			}
			if d.Push && !pushOut[pol.Name()] {
				t.Logf("non-push-out %s pushed", pol.Name())
				return false
			}
			if d.Push && sw.QueueLen(d.Victim) == 0 {
				t.Logf("%s evicts from empty queue", pol.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(100)); err != nil {
		t.Error(err)
	}
}

// TestQuickNESTPartitionInvariant: NEST is complete partitioning — no
// queue ever exceeds its B/n share (rounded up), no matter the traffic.
func TestQuickNESTPartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testCfg() // B=12, n=4: cap 3
		sw := core.MustNew(cfg, NEST{})
		for i := 0; i < 60; i++ {
			port := rng.Intn(cfg.Ports)
			if err := sw.Arrive(pkt.NewWork(port, cfg.PortWork[port])); err != nil {
				return false
			}
			for j := 0; j < cfg.Ports; j++ {
				if sw.QueueLen(j) > (cfg.Buffer+cfg.Ports-1)/cfg.Ports {
					t.Logf("queue %d grew to %d", j, sw.QueueLen(j))
					return false
				}
			}
			if i%5 == 4 {
				sw.Transmit()
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(80)); err != nil {
		t.Error(err)
	}
}

// TestQuickPushOutPoliciesNeverErr drives LQD/BPD/BPD1/LWD through random
// full-buffer traffic on a real switch: every decision must execute
// without an engine validation error.
func TestQuickPushOutPoliciesNeverErr(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := testCfg()
		cfg.CheckInvariants = true
		for _, pol := range ForProcessing() {
			sw := core.MustNew(cfg, pol)
			for slot := 0; slot < 30; slot++ {
				burst := make([]pkt.Packet, rng.Intn(8))
				for i := range burst {
					port := rng.Intn(cfg.Ports)
					burst[i] = pkt.NewWork(port, cfg.PortWork[port])
				}
				if err := sw.Step(burst); err != nil {
					t.Logf("%s: %v", pol.Name(), err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(30)); err != nil {
		t.Error(err)
	}
}

// qcfg returns a deterministic quick.Config so property tests are
// reproducible run to run.
func qcfg(n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(7))}
}
