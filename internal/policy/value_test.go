package policy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// valCfg is a 4-port value-model switch with values up to 8.
func valCfg(buffer int) core.Config {
	return core.Config{
		Model:    core.ModelValue,
		Ports:    4,
		Buffer:   buffer,
		MaxLabel: 8,
		Speedup:  1,
	}
}

// fillValues builds a switch holding the given per-port value multisets.
func fillValues(t *testing.T, cfg core.Config, queues [][]int) *core.Switch {
	t.Helper()
	sw := core.MustNew(cfg, Greedy{})
	for port, vals := range queues {
		for _, v := range vals {
			if err := sw.Arrive(pkt.NewValue(port, v)); err != nil {
				t.Fatalf("fillValues: %v", err)
			}
		}
	}
	return sw
}

func TestLQDValueModel(t *testing.T) {
	t.Run("accepts with free space", func(t *testing.T) {
		sw := fillValues(t, valCfg(8), [][]int{{1}, {2}, nil, nil})
		if d := (VLQD{}).Admit(sw, pkt.NewValue(2, 5)); !d.Accept || d.Push {
			t.Errorf("got %+v", d)
		}
	})

	t.Run("evicts from the longest queue", func(t *testing.T) {
		sw := fillValues(t, valCfg(6), [][]int{{5, 5, 5, 5}, {3}, {2}, nil})
		d := (VLQD{}).Admit(sw, pkt.NewValue(3, 1))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0", d)
		}
	})

	t.Run("own longest queue: arrival beats cheaper minimum", func(t *testing.T) {
		sw := fillValues(t, valCfg(4), [][]int{{2, 5, 7}, {4}, nil, nil})
		d := (VLQD{}).Admit(sw, pkt.NewValue(0, 6))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out of own minimum", d)
		}
	})

	t.Run("own longest queue: cheap arrival dropped", func(t *testing.T) {
		sw := fillValues(t, valCfg(4), [][]int{{2, 5, 7}, {4}, nil, nil})
		if d := (VLQD{}).Admit(sw, pkt.NewValue(0, 2)); d.Accept {
			t.Errorf("got %+v, want drop (arrival == current min)", d)
		}
	})

	t.Run("length ties prefer the cheaper minimum", func(t *testing.T) {
		sw := fillValues(t, valCfg(4), [][]int{{8, 8}, {1, 7}, nil, nil})
		d := (VLQD{}).Admit(sw, pkt.NewValue(2, 5))
		if !d.Push || d.Victim != 1 {
			t.Errorf("got %+v, want push-out from 1 (holds the 1)", d)
		}
	})
}

func TestMVD(t *testing.T) {
	t.Run("pushes out the global minimum", func(t *testing.T) {
		sw := fillValues(t, valCfg(4), [][]int{{5}, {2, 6}, {7}, nil})
		d := (MVD{}).Admit(sw, pkt.NewValue(3, 3))
		if !d.Push || d.Victim != 1 {
			t.Errorf("got %+v, want push-out from 1 (min value 2)", d)
		}
	})

	t.Run("drops arrivals not above the minimum", func(t *testing.T) {
		sw := fillValues(t, valCfg(4), [][]int{{5}, {2, 6}, {7}, nil})
		if d := (MVD{}).Admit(sw, pkt.NewValue(3, 2)); d.Accept {
			t.Errorf("got %+v, want drop (arrival equals min)", d)
		}
	})

	t.Run("min ties go to the longest queue", func(t *testing.T) {
		sw := fillValues(t, valCfg(6), [][]int{{2}, {2, 3, 4}, {8, 8}, nil})
		d := (MVD{}).Admit(sw, pkt.NewValue(3, 5))
		if !d.Push || d.Victim != 1 {
			t.Errorf("got %+v, want push-out from 1 (longer of the tied)", d)
		}
	})
}

func TestMVD1KeepsLastPacket(t *testing.T) {
	// The global minimum (value 1) is alone in queue 0; MVD evicts it,
	// MVD1 goes for the cheapest among queues holding >= 2.
	sw := fillValues(t, valCfg(5), [][]int{{1}, {3, 6}, {4, 7}, nil})
	if d := (MVD{}).Admit(sw, pkt.NewValue(3, 8)); !d.Push || d.Victim != 0 {
		t.Errorf("MVD got %+v, want push-out from 0", d)
	}
	if d := (MVD1{}).Admit(sw, pkt.NewValue(3, 8)); !d.Push || d.Victim != 1 {
		t.Errorf("MVD1 got %+v, want push-out from 1", d)
	}
	// Only singleton queues: MVD1 drops.
	sw = fillValues(t, valCfg(4), [][]int{{1}, {2}, {3}, {4}})
	if d := (MVD1{}).Admit(sw, pkt.NewValue(0, 8)); d.Accept {
		t.Errorf("MVD1 with singleton queues got %+v, want drop", d)
	}
}

func TestMRD(t *testing.T) {
	t.Run("pushes out the max length/avg ratio", func(t *testing.T) {
		// q0: len 3, avg 2 -> ratio 1.5; q1: len 2, avg 8 -> 0.25.
		sw := fillValues(t, valCfg(5), [][]int{{2, 2, 2}, {8, 8}, nil, nil})
		d := (MRD{}).Admit(sw, pkt.NewValue(2, 5))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0", d)
		}
	})

	t.Run("drops arrivals below the global minimum", func(t *testing.T) {
		sw := fillValues(t, valCfg(5), [][]int{{2, 2, 2}, {8, 8}, nil, nil})
		if d := (MRD{}).Admit(sw, pkt.NewValue(2, 1)); d.Accept {
			t.Errorf("got %+v, want drop (arrival below global min)", d)
		}
	})

	t.Run("equal minimum pushes (LQD emulation)", func(t *testing.T) {
		sw := fillValues(t, valCfg(5), [][]int{{2, 2, 2}, {8, 8}, nil, nil})
		d := (MRD{}).Admit(sw, pkt.NewValue(2, 2))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out from 0", d)
		}
	})

	t.Run("own max-ratio queue needs a strict improvement", func(t *testing.T) {
		// Queue 0 is the (virtual) max ratio; an arrival matching its
		// minimum is dropped, a better one displaces the minimum.
		sw := fillValues(t, valCfg(5), [][]int{{2, 2, 2, 2}, {8}, nil, nil})
		if d := (MRD{}).Admit(sw, pkt.NewValue(0, 2)); d.Accept {
			t.Errorf("got %+v, want drop", d)
		}
		d := (MRD{}).Admit(sw, pkt.NewValue(0, 5))
		if !d.Push || d.Victim != 0 {
			t.Errorf("got %+v, want push-out of own minimum", d)
		}
	})

	t.Run("victim queue may differ from the global minimum's", func(t *testing.T) {
		// q0: len 3 avg 5 -> 0.6; q1: len 1 value 1 -> ratio 1.
		// Global min 1 < arrival 4 allows the push, but the victim is
		// q1 (max ratio), exactly as the paper specifies.
		sw := fillValues(t, valCfg(4), [][]int{{5, 5, 5}, {1}, nil, nil})
		d := (MRD{}).Admit(sw, pkt.NewValue(2, 4))
		if !d.Push || d.Victim != 1 {
			t.Errorf("got %+v, want push-out from 1", d)
		}
	})

	t.Run("ratio ties prefer the smaller minimum", func(t *testing.T) {
		// Both queues: len 2, sum 8 -> equal ratios; q1 holds the 3.
		sw := fillValues(t, valCfg(4), [][]int{{4, 4}, {3, 5}, nil, nil})
		d := (MRD{}).Admit(sw, pkt.NewValue(2, 7))
		if !d.Push || d.Victim != 1 {
			t.Errorf("got %+v, want push-out from 1", d)
		}
	})

	t.Run("unit values reduce MRD to LQD", func(t *testing.T) {
		cfg := core.Config{Model: core.ModelValue, Ports: 3, Buffer: 9, MaxLabel: 1, Speedup: 1}
		rng := rand.New(rand.NewSource(5))
		for trial := 0; trial < 50; trial++ {
			lens := []int{rng.Intn(4), rng.Intn(4), rng.Intn(4)}
			total := lens[0] + lens[1] + lens[2]
			if total < cfg.Buffer {
				lens[0] += cfg.Buffer - total
			}
			queues := make([][]int, 3)
			for q, n := range lens {
				for i := 0; i < n; i++ {
					queues[q] = append(queues[q], 1)
				}
			}
			sw := fillValues(t, cfg, queues)
			p := pkt.NewValue(rng.Intn(3), 1)
			dm := (MRD{}).Admit(sw, p)
			dl := (VLQD{}).Admit(sw, p)
			// The paper: "MRD emulates LQD in case all packets have
			// unit values" — identical decisions, victim included.
			if dm != dl {
				t.Fatalf("lens %v arrival %v: MRD %+v, LQD %+v", lens, p, dm, dl)
			}
		}
	})
}

func TestNHSTV(t *testing.T) {
	// k=8, H_8 = 2.7179. Value 8: threshold B/(1·H_8); value 1:
	// threshold B/(8·H_8). With B=32: 11.77 and 1.47.
	cfg := core.Config{Model: core.ModelValue, Ports: 8, Buffer: 32, MaxLabel: 8, Speedup: 1}
	mk := func(lens []int) *core.Switch {
		queues := make([][]int, 8)
		for q, n := range lens {
			for i := 0; i < n; i++ {
				queues[q] = append(queues[q], q+1)
			}
		}
		return fillValues(t, cfg, queues)
	}
	sw := mk([]int{0, 0, 0, 0, 0, 0, 0, 11})
	if d := (NHSTV{}).Admit(sw, pkt.NewValue(7, 8)); !d.Accept {
		t.Error("value 8 below threshold rejected")
	}
	sw = mk([]int{0, 0, 0, 0, 0, 0, 0, 12})
	if d := (NHSTV{}).Admit(sw, pkt.NewValue(7, 8)); d.Accept {
		t.Error("value 8 above threshold accepted")
	}
	sw = mk([]int{1, 0, 0, 0, 0, 0, 0, 0})
	if d := (NHSTV{}).Admit(sw, pkt.NewValue(0, 1)); !d.Accept {
		t.Error("value 1 below threshold rejected")
	}
	sw = mk([]int{2, 0, 0, 0, 0, 0, 0, 0})
	if d := (NHSTV{}).Admit(sw, pkt.NewValue(0, 1)); d.Accept {
		t.Error("value 1 above threshold accepted")
	}
}

func TestValueRegistries(t *testing.T) {
	if got := len(ForValueUniform()); got != 7 {
		t.Errorf("ForValueUniform: %d policies, want 7", got)
	}
	if got := len(ForValueByPort()); got != 8 {
		t.Errorf("ForValueByPort: %d policies, want 8", got)
	}
	for _, p := range ForValueByPort() {
		if got := ValueByName(p.Name()); got == nil {
			t.Errorf("ValueByName(%q) = nil", p.Name())
		}
	}
	if ValueByName("bogus") != nil {
		t.Error("ValueByName(bogus) != nil")
	}
}

func TestCombinedRegistry(t *testing.T) {
	if got := len(ForCombined()); got != 7 {
		t.Errorf("ForCombined: %d policies, want 7", got)
	}
	for _, p := range ForCombined() {
		if got := CombinedByName(p.Name()); got == nil {
			t.Errorf("CombinedByName(%q) = nil", p.Name())
		}
	}
	if CombinedByName("bogus") != nil {
		t.Error("CombinedByName(bogus) != nil")
	}
}

// TestQuickValuePoliciesNeverErr drives every value policy through random
// saturating traffic with engine invariant checks enabled.
func TestQuickValuePoliciesNeverErr(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := valCfg(6)
		cfg.CheckInvariants = true
		for _, pol := range ForValueByPort() {
			sw := core.MustNew(cfg, pol)
			for slot := 0; slot < 30; slot++ {
				burst := make([]pkt.Packet, rng.Intn(8))
				for i := range burst {
					burst[i] = pkt.NewValue(rng.Intn(cfg.Ports), 1+rng.Intn(cfg.MaxLabel))
				}
				if err := sw.Step(burst); err != nil {
					t.Logf("%s: %v", pol.Name(), err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, qcfg(30)); err != nil {
		t.Error(err)
	}
}

// TestQuickMVDMaximizesBufferedValue: after any arrival sequence into a
// full buffer, MVD's buffered total value is at least LQD's — the
// greedy-value property that motivates the policy.
func TestQuickMVDMaximizesBufferedValue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mvd := core.MustNew(valCfg(5), MVD{})
		lqd := core.MustNew(valCfg(5), VLQD{})
		for i := 0; i < 40; i++ {
			p := pkt.NewValue(rng.Intn(4), 1+rng.Intn(8))
			if err := mvd.Arrive(p); err != nil {
				return false
			}
			if err := lqd.Arrive(p); err != nil {
				return false
			}
		}
		var mv, lv int64
		for q := 0; q < 4; q++ {
			mv += mvd.QueueValueSum(q)
			lv += lqd.QueueValueSum(q)
		}
		return mv >= lv
	}
	if err := quick.Check(f, qcfg(100)); err != nil {
		t.Error(err)
	}
}
