package policy

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// benchAdmit measures one policy's per-packet decision cost on a full
// 64-port switch of the given model — the single parameterized harness
// behind every per-model benchmark below. Benchmark names are stable
// across the package unification for benchjson comparisons.
func benchAdmit(b *testing.B, model core.Model, p core.Policy) {
	b.Helper()
	const n = 64
	cfg := core.Config{Model: model, Ports: n, Buffer: 4 * n, MaxLabel: n, Speedup: 1}
	if model != core.ModelValue {
		cfg.PortWork = core.ContiguousWorks(n)
	}
	sw := core.MustNew(cfg, Greedy{})
	rng := rand.New(rand.NewSource(1))
	mk := func() pkt.Packet {
		port := rng.Intn(n)
		switch model {
		case core.ModelProcessing:
			return pkt.NewWork(port, port+1)
		case core.ModelValue:
			return pkt.NewValue(port, 1+rng.Intn(n))
		default:
			return pkt.NewWorkValue(port, port+1, 1+rng.Intn(n))
		}
	}
	for sw.Free() > 0 {
		if err := sw.Arrive(mk()); err != nil {
			b.Fatal(err)
		}
	}
	arrivals := make([]pkt.Packet, 1024)
	for i := range arrivals {
		arrivals[i] = mk()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Admit(sw, arrivals[i%len(arrivals)])
	}
}

// Processing-model roster.
func BenchmarkAdmitGreedy(b *testing.B) { benchAdmit(b, core.ModelProcessing, Greedy{}) }
func BenchmarkAdmitNHST(b *testing.B)   { benchAdmit(b, core.ModelProcessing, NHST{}) }
func BenchmarkAdmitNEST(b *testing.B)   { benchAdmit(b, core.ModelProcessing, NEST{}) }
func BenchmarkAdmitNHDT(b *testing.B)   { benchAdmit(b, core.ModelProcessing, NHDT{}) }
func BenchmarkAdmitLQD(b *testing.B)    { benchAdmit(b, core.ModelProcessing, LQD{}) }
func BenchmarkAdmitBPD(b *testing.B)    { benchAdmit(b, core.ModelProcessing, BPD{}) }
func BenchmarkAdmitLWD(b *testing.B)    { benchAdmit(b, core.ModelProcessing, LWD{}) }

// Value-model roster.
func BenchmarkAdmitValueLQD(b *testing.B) { benchAdmit(b, core.ModelValue, VLQD{}) }
func BenchmarkAdmitMVD(b *testing.B)      { benchAdmit(b, core.ModelValue, MVD{}) }
func BenchmarkAdmitMVD1(b *testing.B)     { benchAdmit(b, core.ModelValue, MVD1{}) }
func BenchmarkAdmitMRD(b *testing.B)      { benchAdmit(b, core.ModelValue, MRD{}) }
func BenchmarkAdmitNHSTV(b *testing.B)    { benchAdmit(b, core.ModelValue, NHSTV{}) }

// Combined work×value roster.
func BenchmarkAdmitCombinedLWD(b *testing.B) { benchAdmit(b, core.ModelCombined, LWD{}) }
func BenchmarkAdmitCombinedMRD(b *testing.B) { benchAdmit(b, core.ModelCombined, MRD{}) }
func BenchmarkAdmitRVD(b *testing.B)         { benchAdmit(b, core.ModelCombined, RVD{}) }
