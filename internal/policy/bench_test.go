package policy

import (
	"math/rand"
	"testing"

	"smbm/internal/core"
	"smbm/internal/pkt"
)

// benchAdmit measures one policy's per-packet decision cost on a full
// 64-port switch.
func benchAdmit(b *testing.B, p core.Policy) {
	b.Helper()
	const n = 64
	cfg := core.Config{
		Model: core.ModelProcessing, Ports: n, Buffer: 4 * n,
		MaxLabel: n, Speedup: 1, PortWork: core.ContiguousWorks(n),
	}
	sw := core.MustNew(cfg, Greedy{})
	rng := rand.New(rand.NewSource(1))
	for sw.Free() > 0 {
		port := rng.Intn(n)
		if err := sw.Arrive(pkt.NewWork(port, port+1)); err != nil {
			b.Fatal(err)
		}
	}
	arrivals := make([]pkt.Packet, 1024)
	for i := range arrivals {
		port := rng.Intn(n)
		arrivals[i] = pkt.NewWork(port, port+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Admit(sw, arrivals[i%len(arrivals)])
	}
}

func BenchmarkAdmitGreedy(b *testing.B) { benchAdmit(b, Greedy{}) }
func BenchmarkAdmitNHST(b *testing.B)   { benchAdmit(b, NHST{}) }
func BenchmarkAdmitNEST(b *testing.B)   { benchAdmit(b, NEST{}) }
func BenchmarkAdmitNHDT(b *testing.B)   { benchAdmit(b, NHDT{}) }
func BenchmarkAdmitLQD(b *testing.B)    { benchAdmit(b, LQD{}) }
func BenchmarkAdmitBPD(b *testing.B)    { benchAdmit(b, BPD{}) }
func BenchmarkAdmitLWD(b *testing.B)    { benchAdmit(b, LWD{}) }
