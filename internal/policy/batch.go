package policy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// This file holds the batch kernels: each policy's core.BatchPolicy
// implementation decides a whole arrival burst with the per-burst
// evaluation its per-packet Admit cannot express — thresholds and
// normalizers hoisted out of the loop, burst suffixes dropped
// wholesale once free space is exhausted (free space never grows
// during an arrival phase), repeated congested arrivals resolved
// through the engine's drop memo, and the push-out victim pointer
// maintained incrementally across the burst.
//
// With the engine unified across models, the kernels are too: every
// policy instantiates one of the two generic skeletons in kernel.go
// with its rule struct, except Greedy (whose accept/drop split is a
// pure prefix) and BPD/BPD1 (whose maintained-victim repair invariant
// is stronger than a per-packet victim ordering can express).
//
// Every kernel must reproduce its Admit decision sequence bit for bit;
// the batch differential and fuzz suites replay both paths on every
// roster policy — processing, value and combined — and require
// identical Stats, PortCounters and obs counters.

// AdmitBatch implements core.BatchPolicy: the accept/drop split of a
// greedy burst is a pure prefix of length min(free, len).
//
//smb:hotpath
func (Greedy) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	free := b.Free()
	if free > len(ps) {
		free = len(ps)
	}
	for i := 0; i < free; i++ {
		b.Accept(ps[i])
	}
	b.DropAll(ps[free:])
}

// nhstRule is NHST's admission predicate with Z, the work table and
// the buffer bound hoisted. Z is precomputed by the engine with the
// same ascending-port summation as the Admit fallback, so the
// threshold comparison is bit-identical.
type nhstRule struct {
	lens, works []int
	z, buf      float64
}

// newNHSTRule hoists NHST's per-burst constants once.
//
//smb:hotpath
func newNHSTRule(f core.FastView) nhstRule {
	return nhstRule{f.QueueLens(), f.PortWorks(), f.PortInvWorkSum(), float64(f.Buffer())}
}

// admit implements thresholdRule.
//
//smb:hotpath
func (r nhstRule) admit(p pkt.Packet) bool {
	return float64(r.lens[p.Port])*float64(r.works[p.Port])*r.z < r.buf
}

// memo implements thresholdRule: the predicate is O(1).
func (nhstRule) memo() bool { return false }

// AdmitBatch implements core.BatchPolicy. The length slice is live, so
// each accept is observed by the next threshold comparison exactly as
// in the per-packet path.
//
//smb:hotpath
func (NHST) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	thresholdBatch(b, ps, newNHSTRule(b.View()))
}

// nestRule is NEST's complete-partitioning predicate.
type nestRule struct {
	lens   []int
	n, buf int
}

// admit implements thresholdRule: |Q_i| < B/n  ⇔  |Q_i|·n < B.
//
//smb:hotpath
func (r nestRule) admit(p pkt.Packet) bool { return r.lens[p.Port]*r.n < r.buf }

// memo implements thresholdRule: the predicate is O(1).
func (nestRule) memo() bool { return false }

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (NEST) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	thresholdBatch(b, ps, nestRule{f.QueueLens(), f.Ports(), f.Buffer()})
}

// nhdtRule is NHDT's rank-and-sum predicate with the buffer bound and
// harmonic normalizer hoisted.
type nhdtRule struct {
	lens    []int
	buf, hn float64
}

// admit implements thresholdRule.
//
//smb:hotpath
func (r nhdtRule) admit(p pkt.Packet) bool {
	li := r.lens[p.Port]
	var m, sum int
	for _, l := range r.lens {
		if l >= li {
			m++
			sum += l
		}
	}
	return float64(sum) < r.buf*hmath.Harmonic(m)/r.hn
}

// memo implements thresholdRule: the rank-and-sum scan only reruns
// when the switch state changed since the same (port, value) was last
// dropped — in a congested burst the engine's drop memo collapses the
// repeated O(n) evaluations to O(1).
func (nhdtRule) memo() bool { return true }

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (NHDT) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	thresholdBatch(b, ps, nhdtRule{f.QueueLens(), float64(f.Buffer()), hmath.Harmonic(f.Ports())})
}

// nhdtwRule is NHDT's memoized rank-and-sum structure on the work
// ranking (see NHDTW).
type nhdtwRule struct {
	qworks, lens, works []int
	buf, hn             float64
}

// admit implements thresholdRule.
//
//smb:hotpath
func (r nhdtwRule) admit(p pkt.Packet) bool {
	pw := r.works[p.Port]
	wi := r.qworks[p.Port] + pw // virtual add
	var m, sum int
	for j, w := range r.qworks {
		if j == p.Port {
			w += pw
		}
		if w >= wi {
			m++
			sum += r.lens[j]
		}
	}
	return float64(sum) < r.buf*hmath.Harmonic(m)/r.hn
}

// memo implements thresholdRule (see nhdtRule.memo).
func (nhdtwRule) memo() bool { return true }

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (NHDTW) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	thresholdBatch(b, ps, nhdtwRule{f.QueueTotalWorks(), f.QueueLens(), f.PortWorks(), float64(f.Buffer()), hmath.Harmonic(f.Ports())})
}

// staticRule is StaticThreshold's per-port table predicate.
type staticRule struct {
	lens, t []int
}

// admit implements thresholdRule.
//
//smb:hotpath
func (r staticRule) admit(p pkt.Packet) bool {
	return p.Port < len(r.t) && r.lens[p.Port] < r.t[p.Port]
}

// memo implements thresholdRule: the predicate is O(1).
func (staticRule) memo() bool { return false }

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (s StaticThreshold) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	thresholdBatch(b, ps, staticRule{b.View().QueueLens(), s.T})
}

// AdmitBatch implements core.BatchPolicy. H_k, the label ceiling and
// the buffer bound are hoisted once per burst.
//
//smb:hotpath
func (NHSTV) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	thresholdBatch(b, ps, newNHSTVRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy: the congested tail resolves
// every push-out against the engine's incrementally maintained argmax
// plus the analytic virtual add, exactly like the per-packet fast
// path, but with the free-space prefix accepted without any per-packet
// policy evaluation.
//
//smb:hotpath
func (LQD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newLQDRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy (LQD's kernel on the
// total-work key).
//
//smb:hotpath
func (LWD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newLWDRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (VLQD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newVLQDRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MVD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newMVDRule(b.View(), 1))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MVD1) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newMVDRule(b.View(), 2))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (MRD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newMRDRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (TVD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	pushOutBatch(b, ps, newTVDRule(b.View()))
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (BPD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	bpdBatch(b, ps, 1)
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (BPD1) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	bpdBatch(b, ps, 2)
}

// bpdBatch is the shared BPD/BPD1 kernel. Instead of rescanning for
// the biggest non-empty queue on every congested arrival, it
// maintains j = max{idx : lens[idx] >= minLen} across the burst:
// an accept can only raise its own queue (j moves up to that port at
// most), and a push-out only changes queues at or below j (the insert
// port never exceeds the victim), so j is repaired by a downward scan
// only when the victim's queue drops below the bar. The maintained j
// always equals what biggestNonEmpty would recompute — a cross-packet
// invariant the per-packet victimRule shape cannot express, so this
// kernel stays outside the generic family.
//
//smb:hotpath
func bpdBatch(b *core.Batch, ps []pkt.Packet, minLen int) {
	f := b.View()
	lens := f.QueueLens()
	free := b.Free()
	j := -2 // -2: not yet computed; -1: no qualifying queue
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			if j != -2 && p.Port > j && lens[p.Port] >= minLen {
				j = p.Port
			}
			continue
		}
		if j == -2 {
			j = len(lens) - 1
			for j >= 0 && lens[j] < minLen {
				j--
			}
		}
		if j >= 0 && p.Port <= j {
			b.PushOut(j, p)
			for j >= 0 && lens[j] < minLen {
				j--
			}
		} else {
			b.Drop(p)
		}
	}
}

var (
	_ core.BatchPolicy = Greedy{}
	_ core.BatchPolicy = NHST{}
	_ core.BatchPolicy = NEST{}
	_ core.BatchPolicy = NHDT{}
	_ core.BatchPolicy = NHDTW{}
	_ core.BatchPolicy = StaticThreshold{}
	_ core.BatchPolicy = NHSTV{}
	_ core.BatchPolicy = LQD{}
	_ core.BatchPolicy = BPD{}
	_ core.BatchPolicy = BPD1{}
	_ core.BatchPolicy = LWD{}
	_ core.BatchPolicy = VLQD{}
	_ core.BatchPolicy = MVD{}
	_ core.BatchPolicy = MVD1{}
	_ core.BatchPolicy = MRD{}
	_ core.BatchPolicy = TVD{}
)
