package policy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// This file holds the processing-model batch kernels: each policy's
// core.BatchPolicy implementation decides a whole arrival burst with
// the per-burst evaluation its per-packet Admit cannot express —
// thresholds and normalizers hoisted out of the loop, burst suffixes
// dropped wholesale once free space is exhausted (free space never
// grows during an arrival phase), repeated congested arrivals resolved
// through the engine's drop memo, and the push-out victim pointer
// maintained incrementally across the burst.
//
// Every kernel must reproduce its Admit decision sequence bit for bit;
// the batch differential and fuzz suites replay both paths on every
// roster policy and require identical Stats, PortCounters and obs
// counters.

// AdmitBatch implements core.BatchPolicy: the accept/drop split of a
// greedy burst is a pure prefix of length min(free, len).
//
//smb:hotpath
func (Greedy) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	free := b.Free()
	if free > len(ps) {
		free = len(ps)
	}
	for i := 0; i < free; i++ {
		b.Accept(ps[i])
	}
	b.DropAll(ps[free:])
}

// AdmitBatch implements core.BatchPolicy. Z, the work table and the
// buffer bound are hoisted once per burst; the length slice is live,
// so each accept is observed by the next threshold comparison exactly
// as in the per-packet path.
//
//smb:hotpath
func (NHST) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	z := f.PortInvWorkSum()
	lens := f.QueueLens()
	works := f.PortWorks()
	bufF := float64(f.Buffer())
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if float64(lens[p.Port])*float64(works[p.Port])*z < bufF {
			b.Accept(p)
			free--
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (NEST) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens := f.QueueLens()
	n := f.Ports()
	buf := f.Buffer()
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if lens[p.Port]*n < buf {
			b.Accept(p)
			free--
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy. The rank-and-sum scan only
// reruns when the switch state changed since the same (port, value)
// was last dropped: in a congested burst the engine's drop memo
// collapses the repeated O(n) evaluations to O(1).
//
//smb:hotpath
func (NHDT) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens := f.QueueLens()
	bufF := float64(f.Buffer())
	hn := hmath.Harmonic(f.Ports())
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		li := lens[p.Port]
		var m, sum int
		for _, l := range lens {
			if l >= li {
				m++
				sum += l
			}
		}
		threshold := bufF * hmath.Harmonic(m) / hn
		if float64(sum) < threshold {
			b.Accept(p)
			free--
		} else {
			b.DropMemo(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy (see NHDT: same memoized
// rank-and-sum structure on the work ranking).
//
//smb:hotpath
func (NHDTW) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	qworks := f.QueueTotalWorks()
	lens := f.QueueLens()
	works := f.PortWorks()
	bufF := float64(f.Buffer())
	hn := hmath.Harmonic(f.Ports())
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if b.KnownDrop(p) {
			b.Drop(p)
			continue
		}
		pw := works[p.Port]
		wi := qworks[p.Port] + pw // virtual add
		var m, sum int
		for j, w := range qworks {
			if j == p.Port {
				w += pw
			}
			if w >= wi {
				m++
				sum += lens[j]
			}
		}
		threshold := bufF * hmath.Harmonic(m) / hn
		if float64(sum) < threshold {
			b.Accept(p)
			free--
		} else {
			b.DropMemo(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (s StaticThreshold) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens := f.QueueLens()
	free := b.Free()
	for i := range ps {
		if free == 0 {
			b.DropAll(ps[i:])
			return
		}
		p := ps[i]
		if p.Port < len(s.T) && lens[p.Port] < s.T[p.Port] {
			b.Accept(p)
			free--
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy: the congested tail resolves
// every push-out against the engine's incrementally maintained argmax
// plus the analytic virtual add, exactly like the per-packet fast
// path, but with the free-space prefix accepted without any per-packet
// policy evaluation.
//
//smb:hotpath
func (LQD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	lens := f.QueueLens()
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		i := p.Port
		ti, tk := f.LongestQueue()
		winner := ti
		if li := lens[i] + 1; li > tk || (li == tk && i > ti) {
			winner = i
		}
		if winner != i {
			b.PushOut(winner, p)
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (BPD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	bpdBatch(b, ps, 1)
}

// AdmitBatch implements core.BatchPolicy.
//
//smb:hotpath
func (BPD1) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	bpdBatch(b, ps, 2)
}

// bpdBatch is the shared BPD/BPD1 kernel. Instead of rescanning for
// the biggest non-empty queue on every congested arrival, it
// maintains j = max{idx : lens[idx] >= minLen} across the burst:
// an accept can only raise its own queue (j moves up to that port at
// most), and a push-out only changes queues at or below j (the insert
// port never exceeds the victim), so j is repaired by a downward scan
// only when the victim's queue drops below the bar. The maintained j
// always equals what biggestNonEmpty would recompute.
//
//smb:hotpath
func bpdBatch(b *core.Batch, ps []pkt.Packet, minLen int) {
	f := b.View()
	lens := f.QueueLens()
	free := b.Free()
	j := -2 // -2: not yet computed; -1: no qualifying queue
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			if j != -2 && p.Port > j && lens[p.Port] >= minLen {
				j = p.Port
			}
			continue
		}
		if j == -2 {
			j = len(lens) - 1
			for j >= 0 && lens[j] < minLen {
				j--
			}
		}
		if j >= 0 && p.Port <= j {
			b.PushOut(j, p)
			for j >= 0 && lens[j] < minLen {
				j--
			}
		} else {
			b.Drop(p)
		}
	}
}

// AdmitBatch implements core.BatchPolicy (LQD's kernel on the
// total-work key).
//
//smb:hotpath
func (LWD) AdmitBatch(b *core.Batch, ps []pkt.Packet) {
	f := b.View()
	qworks := f.QueueTotalWorks()
	works := f.PortWorks()
	free := b.Free()
	for x := range ps {
		p := ps[x]
		if free > 0 {
			b.Accept(p)
			free--
			continue
		}
		i := p.Port
		ti, tk := f.HeaviestQueue()
		winner := ti
		if wi := qworks[i] + works[i]; wi > tk || (wi == tk && i > ti) {
			winner = i
		}
		if winner != i {
			b.PushOut(winner, p)
		} else {
			b.Drop(p)
		}
	}
}

var (
	_ core.BatchPolicy = Greedy{}
	_ core.BatchPolicy = NHST{}
	_ core.BatchPolicy = NEST{}
	_ core.BatchPolicy = NHDT{}
	_ core.BatchPolicy = NHDTW{}
	_ core.BatchPolicy = StaticThreshold{}
	_ core.BatchPolicy = LQD{}
	_ core.BatchPolicy = BPD{}
	_ core.BatchPolicy = BPD1{}
	_ core.BatchPolicy = LWD{}
)
