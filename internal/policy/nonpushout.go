package policy

import (
	"smbm/internal/core"
	"smbm/internal/hmath"
	"smbm/internal/pkt"
)

// Greedy is the baseline non-push-out tail-drop policy: accept whenever
// the shared buffer has free space. In the single-queue heterogeneous
// model greedy non-push-out policies are k-competitive [Keslassy et al.];
// it serves as the floor for all comparisons.
type Greedy struct{}

// Name implements core.Policy.
func (Greedy) Name() string { return "Greedy" }

// Admit implements core.Policy.
//
//smb:hotpath
func (Greedy) Admit(v core.View, _ pkt.Packet) core.Decision {
	if v.Free() > 0 {
		return core.Accept()
	}
	return core.Drop()
}

// NHST is the Non-Push-Out-Harmonic-Static-Threshold policy: accept a
// packet for port i while |Q_i| < B/(w_i·Z) with Z = Σ_j 1/w_j.
// Thresholds are inversely proportional to the port's required work.
// Theorem 1: Θ(kZ)-competitive.
type NHST struct{}

// Name implements core.Policy.
func (NHST) Name() string { return "NHST" }

// Admit implements core.Policy.
//
//smb:hotpath
func (NHST) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	if f, ok := v.(core.FastView); ok {
		// Z is precomputed by the engine with the same ascending-port
		// summation as the fallback below, so the threshold comparison
		// is bit-identical.
		z := f.PortInvWorkSum()
		if float64(f.QueueLens()[p.Port])*float64(f.PortWorks()[p.Port])*z < float64(v.Buffer()) {
			return core.Accept()
		}
		return core.Drop()
	}
	z := 0.0
	for j := 0; j < v.Ports(); j++ {
		z += 1 / float64(v.PortWork(j))
	}
	// |Q_i| < B/(w_i·Z)  ⇔  |Q_i|·w_i·Z < B, avoiding division.
	if float64(v.QueueLen(p.Port))*float64(v.PortWork(p.Port))*z < float64(v.Buffer()) {
		return core.Accept()
	}
	return core.Drop()
}

// NEST is the Non-Push-Out-Equal-Static-Threshold policy: accept for port
// i while |Q_i| < B/n, i.e. complete partitioning of the buffer.
// Theorem 2: Θ(n)-competitive — interestingly better than NHST's Θ(kZ) in
// the worst case. Length-based, so it applies unchanged in the value
// model (used in Fig. 5 panels 4–9).
type NEST struct{}

// Name implements core.Policy.
func (NEST) Name() string { return "NEST" }

// Admit implements core.Policy.
//
//smb:hotpath
func (NEST) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	// |Q_i| < B/n  ⇔  |Q_i|·n < B.
	if v.QueueLen(p.Port)*v.Ports() < v.Buffer() {
		return core.Accept()
	}
	return core.Drop()
}

// NHDT is the Non-Push-Out-Harmonic-Dynamic-Threshold policy of
// Kesselman–Mansour: on arrival to port i, let m be the number of queues
// at least as long as Q_i; accept while the total length of those m
// queues is below (B/H_n)·H_m. O(log n)-competitive under uniform
// processing; Theorem 3 shows it degrades to ≥ ½√(k ln k) under
// heterogeneous processing. Length-based, hence also run in the value
// model.
//
// The paper instantiates the harmonic normalizer with the number of
// output ports (its configurations have n = k); we use H_n accordingly.
type NHDT struct{}

// Name implements core.Policy.
func (NHDT) Name() string { return "NHDT" }

// Admit implements core.Policy.
//
//smb:hotpath
func (NHDT) Admit(v core.View, p pkt.Packet) core.Decision {
	if v.Free() == 0 {
		return core.Drop()
	}
	var m, sum int
	if f, ok := v.(core.FastView); ok {
		// Same rank-and-sum scan over the live length slice; the
		// Harmonic values come from hmath's precomputed table either way.
		lens := f.QueueLens()
		li := lens[p.Port]
		for _, l := range lens {
			if l >= li {
				m++
				sum += l
			}
		}
	} else {
		li := v.QueueLen(p.Port)
		for j := 0; j < v.Ports(); j++ {
			if l := v.QueueLen(j); l >= li {
				m++
				sum += l
			}
		}
	}
	threshold := float64(v.Buffer()) * hmath.Harmonic(m) / hmath.Harmonic(v.Ports())
	if float64(sum) < threshold {
		return core.Accept()
	}
	return core.Drop()
}

var (
	_ core.Policy = Greedy{}
	_ core.Policy = NHST{}
	_ core.Policy = NEST{}
	_ core.Policy = NHDT{}
)
