package smbm_test

import (
	"fmt"

	"smbm"
)

// ExampleNewSwitch simulates one congested slot under the paper's LWD
// policy and drains the buffer.
func ExampleNewSwitch() {
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    2,
		Buffer:   3,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: []int{1, 4}, // cheap forwarding vs expensive IPsec
	}
	sw, err := smbm.NewSwitch(cfg, smbm.LWD())
	if err != nil {
		panic(err)
	}
	// Four arrivals into a 3-packet buffer: LWD pushes out from the
	// queue with the most buffered work (the IPsec queue).
	err = sw.Step([]smbm.Packet{
		smbm.WorkPacket(1, 4),
		smbm.WorkPacket(1, 4),
		smbm.WorkPacket(0, 1),
		smbm.WorkPacket(0, 1),
	})
	if err != nil {
		panic(err)
	}
	sw.Drain()
	st := sw.Stats()
	fmt.Printf("transmitted=%d pushedOut=%d\n", st.Transmitted, st.PushedOut)
	// Output: transmitted=3 pushedOut=1
}

// ExampleCompare ranks policies on one deterministic burst.
func ExampleCompare() {
	cfg := smbm.Config{
		Model:    smbm.ModelValue,
		Ports:    2,
		Buffer:   2,
		MaxLabel: 9,
		Speedup:  1,
	}
	// Two cheap packets arrive before two valuable ones.
	trace := smbm.Trace{{
		smbm.ValuePacket(0, 1), smbm.ValuePacket(0, 1),
		smbm.ValuePacket(1, 9), smbm.ValuePacket(1, 9),
	}}
	results, err := smbm.Compare(cfg, []smbm.Policy{smbm.Greedy(), smbm.MRD()}, trace, 0)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%s delivered value %d\n", r.Policy, r.Throughput)
	}
	// Output:
	// Greedy delivered value 2
	// MRD delivered value 18
}

// ExampleExactOptimum certifies a policy's decision against the true
// offline optimum on a tiny instance.
func ExampleExactOptimum() {
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    2,
		Buffer:   2,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: []int{1, 3},
	}
	trace := smbm.Trace{
		{smbm.WorkPacket(1, 3), smbm.WorkPacket(1, 3)},
		{smbm.WorkPacket(0, 1)},
		{smbm.WorkPacket(0, 1)},
	}
	// Hoarding both work-3 packets would fill the 2-slot buffer for the
	// whole horizon and forfeit both work-1 packets; the optimum takes
	// one of each kind plus the late arrival: 3 transmissions.
	best, err := smbm.ExactOptimum(cfg, trace)
	if err != nil {
		panic(err)
	}
	fmt.Println(best)
	// Output: 3
}
