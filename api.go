package smbm

import (
	"smbm/internal/adversary"
	"smbm/internal/core"
	"smbm/internal/experiments"
	"smbm/internal/faults"
	"smbm/internal/mapcheck"
	"smbm/internal/obs"
	"smbm/internal/opt"
	"smbm/internal/pkt"
	"smbm/internal/policy"
	"smbm/internal/search"
	"smbm/internal/sim"
	"smbm/internal/singleq"
	"smbm/internal/traffic"
)

// Core model types, re-exported from the engine.
type (
	// Config describes a shared-memory switch instance.
	Config = core.Config
	// Model selects the processing, value or combined generalization.
	Model = core.Model
	// Packet is a unit-sized packet with port, work and value labels.
	Packet = pkt.Packet
	// Policy is a buffer management (admission control) policy.
	Policy = core.Policy
	// Decision is a policy's verdict on an arriving packet.
	Decision = core.Decision
	// View is the read-only switch state available to policies.
	View = core.View
	// Switch is a shared-memory switch simulation instance.
	Switch = core.Switch
	// Stats carries a run's conservation-checkable counters.
	Stats = core.Stats
	// Trace is a materialized arrival sequence, one burst per slot. A
	// Trace is itself a Provider, so it drops into every streaming API.
	Trace = traffic.Trace
	// Source produces per-slot arrival bursts.
	Source = traffic.Source
	// Provider is a re-derivable arrival stream of known length; every
	// replay opens its own cursor, so runs are bit-identical without
	// sharing state.
	Provider = traffic.Provider
	// Cursor is an open read position over a Provider's slot stream.
	Cursor = traffic.Cursor
	// MMPPConfig parameterizes the paper's on-off bursty traffic.
	MMPPConfig = traffic.MMPPConfig
	// LabelMode selects how generated packets are labeled.
	LabelMode = traffic.LabelMode
	// System is anything the harness can drive over a trace.
	System = sim.System
	// Instance is one simulation cell (config + policies + trace).
	Instance = sim.Instance
	// Result reports one policy's performance on an instance.
	Result = sim.Result
	// Construction is a lower-bound theorem's executable counterexample.
	Construction = adversary.Construction
)

// Model enum values.
const (
	// ModelProcessing is the Section III model: heterogeneous required
	// work, FIFO queues, throughput in packets.
	ModelProcessing = core.ModelProcessing
	// ModelValue is the Section IV model: heterogeneous values,
	// priority queues, throughput in total value.
	ModelValue = core.ModelValue
	// ModelCombined is the work×value model the paper never ran:
	// FIFO queues with per-port work AND per-packet intrinsic value,
	// objective = transmitted value (per cycle).
	ModelCombined = core.ModelCombined
)

// Traffic labeling modes.
const (
	// LabelWorkByPort stamps processing-model packets with their port's
	// configured work.
	LabelWorkByPort = traffic.LabelWorkByPort
	// LabelValueUniform draws packet values uniformly from [1,k].
	LabelValueUniform = traffic.LabelValueUniform
	// LabelValueByPort sets value = port+1 (the value≡port special
	// case).
	LabelValueByPort = traffic.LabelValueByPort
	// LabelWorkValue stamps combined-model packets with their port's
	// configured work and a value drawn uniformly from [1,k].
	LabelWorkValue = traffic.LabelWorkValue
)

// NewSwitch builds a switch simulator from cfg driven by p.
func NewSwitch(cfg Config, p Policy) (*Switch, error) { return core.New(cfg, p) }

// WorkPacket returns a processing-model packet with the given required
// work, destined to port.
func WorkPacket(port, work int) Packet { return pkt.NewWork(port, work) }

// ValuePacket returns a value-model packet with the given intrinsic
// value, destined to port.
func ValuePacket(port, value int) Packet { return pkt.NewValue(port, value) }

// WorkValuePacket returns a combined-model packet carrying both a
// required work and an intrinsic value, destined to port.
func WorkValuePacket(port, work, value int) Packet { return pkt.NewWorkValue(port, work, value) }

// ContiguousWorks returns the canonical configuration of k ports with
// required works 1..k.
func ContiguousWorks(k int) []int { return core.ContiguousWorks(k) }

// Processing-model policies (Section III).

// LWD returns the paper's main contribution, Longest-Work-Drop: push out
// from the queue with the most total residual work. At most
// 2-competitive (Theorem 7).
func LWD() Policy { return policy.LWD{} }

// LQD returns Longest-Queue-Drop: push out from the longest queue.
func LQD() Policy { return policy.LQD{} }

// BPD returns Biggest-Packet-Drop: push out from the queue with the
// largest processing requirement.
func BPD() Policy { return policy.BPD{} }

// BPD1 returns the BPD variant that never pushes out a queue's last
// packet.
func BPD1() Policy { return policy.BPD1{} }

// Greedy returns the non-push-out tail-drop baseline.
func Greedy() Policy { return policy.Greedy{} }

// NHST returns the harmonic static-threshold non-push-out policy.
func NHST() Policy { return policy.NHST{} }

// NEST returns the equal static-threshold non-push-out policy.
func NEST() Policy { return policy.NEST{} }

// NHDT returns the harmonic dynamic-threshold non-push-out policy.
func NHDT() Policy { return policy.NHDT{} }

// StaticThreshold returns a non-push-out policy with explicit per-port
// thresholds.
func StaticThreshold(label string, thresholds []int) Policy {
	return policy.StaticThreshold{Label: label, T: thresholds}
}

// Value-model policies (Section IV).

// MRD returns Maximal-Ratio-Drop, the paper's conjectured
// constant-competitive value-model policy: push out the cheapest packet
// of the queue maximizing |Q|/avg(Q).
func MRD() Policy { return policy.MRD{} }

// MVD returns Minimal-Value-Drop: push out the globally cheapest packet.
func MVD() Policy { return policy.MVD{} }

// MVD1 returns the MVD variant that never pushes out a queue's last
// packet.
func MVD1() Policy { return policy.MVD1{} }

// ValueLQD returns Longest-Queue-Drop for the value model: drop the
// cheapest packet of the longest queue.
func ValueLQD() Policy { return policy.VLQD{} }

// NHSTV returns the reversed harmonic static thresholds for the
// value-by-port special case.
func NHSTV() Policy { return policy.NHSTV{} }

// Combined-model policies (the open work×value model).

// RVD returns Ratio-Value-Drop, the combined-model hybrid: push out
// the tail of the queue buffering the most work per unit of value.
func RVD() Policy { return policy.RVD{} }

// ProcessingPolicies returns the full processing-model roster in the
// paper's order.
func ProcessingPolicies() []Policy { return policy.ForProcessing() }

// ValuePolicies returns the value-model roster for uniform values.
func ValuePolicies() []Policy { return policy.ForValueUniform() }

// ValueByPortPolicies returns the value-model roster for the value≡port
// special case (adds NHSTV).
func ValueByPortPolicies() []Policy { return policy.ForValueByPort() }

// CombinedPolicies returns the combined work×value roster: the
// carried-over disciplines plus the LWD/MRD/RVD push-out family.
func CombinedPolicies() []Policy { return policy.ForCombined() }

// References.

// NewOptProxy returns the paper's OPT reference for cfg: a single
// priority queue over the whole buffer with Ports·Speedup cores.
func NewOptProxy(cfg Config) (System, error) { return sim.NewOptProxy(cfg) }

// ExactOptimum returns the true offline optimum objective on a tiny
// instance (see internal/opt for the size caps): transmitted packets in
// the processing model, transmitted value in the value model.
func ExactOptimum(cfg Config, trace Trace) (int64, error) {
	if cfg.Model == ModelValue {
		return opt.ExactValue(cfg, trace)
	}
	return opt.ExactProcessing(cfg, trace)
}

// Traffic and experiment plumbing.

// NewMMPP builds the paper's Markov-modulated Poisson traffic generator.
func NewMMPP(cfg MMPPConfig) (Source, error) { return traffic.NewMMPP(cfg) }

// RecordTrace materializes the next slots slots of src.
func RecordTrace(src Source, slots int) Trace { return traffic.Record(src, slots) }

// NewMMPPProvider wraps a seeded MMPP spec as a Provider of the given
// length: every cursor regenerates the identical stream, holding
// O(Sources) state regardless of slots.
func NewMMPPProvider(cfg MMPPConfig, slots int) (Provider, error) {
	return traffic.NewMMPPProvider(cfg, slots)
}

// OpenTraceFile returns a Provider that streams a trace file (text or
// binary format) record by record, so replaying it costs O(peak burst)
// memory regardless of the file's length.
func OpenTraceFile(path string) (Provider, error) { return traffic.OpenFile(path) }

// RunTrace drives sys over the arrival stream with periodic flushouts
// (0 = final drain only) and returns its counters. A materialized
// Trace is itself a Provider, so both shapes work.
func RunTrace(sys System, src Provider, flushEvery int) (Stats, error) {
	return sim.RunTrace(sys, src, flushEvery)
}

// CompetitiveRatio runs p and the OPT proxy on the same arrival stream
// and returns OPT's objective divided by p's.
func CompetitiveRatio(cfg Config, p Policy, src Provider, flushEvery int) (float64, error) {
	inst := Instance{Cfg: cfg, Policies: []Policy{p}, Provider: src, FlushEvery: flushEvery}
	res, err := inst.Run()
	if err != nil {
		return 0, err
	}
	return res[0].Ratio, nil
}

// Compare runs every policy and the OPT proxy on the same arrival
// stream.
func Compare(cfg Config, policies []Policy, src Provider, flushEvery int) ([]Result, error) {
	return Instance{Cfg: cfg, Policies: policies, Provider: src, FlushEvery: flushEvery}.Run()
}

// LowerBounds returns the paper's lower-bound constructions (Theorems
// 1–6, 9–11) at default parameters.
func LowerBounds() ([]Construction, error) { return adversary.All() }

// PanelIDs lists the Fig. 5 evaluation panels.
func PanelIDs() []string { return experiments.PanelIDs() }

// Parameter sweeps — single-process or distributed across a fleet.
type (
	// Sweep describes a one-dimensional parameter sweep replicated over
	// seeds. Set Checkpoint for resumable single-process runs, or Ledger
	// plus LedgerWorker to divide the grid crash-safely among several
	// processes through a shared lease-ledger directory (internal/lease):
	// workers survive crashes, hangs and torn journal writes, and the
	// merged result stays bit-identical to a single-process run.
	Sweep = sim.Sweep
	// SweepResult is a completed — or gracefully partial — sweep.
	SweepResult = sim.SweepResult
	// SweepPoint aggregates one swept value across seeds.
	SweepPoint = sim.PointResult
	// SweepProgress is the per-cell progress notification delivered to
	// Sweep.Progress.
	SweepProgress = sim.SweepProgress
	// CellError is a failure confined to one (x, seed) sweep cell.
	CellError = sim.CellError
	// LeaseCounts aggregates one process's lease-ledger activity during
	// a distributed sweep (SweepResult.Lease).
	LeaseCounts = obs.LeaseCounts
)

// Single-queue architecture (the paper's Fig. 1 baseline).
type (
	// SingleQueueConfig describes a single-queue switch whose cores
	// process any traffic type.
	SingleQueueConfig = singleq.Config
	// SingleQueue is a single-queue switch instance.
	SingleQueue = singleq.Switch
	// PortCounters carries per-output-port statistics of a shared-memory
	// run.
	PortCounters = core.PortCounters
)

// Single-queue processing orders.
const (
	// OrderPQ serves the smallest required work first.
	OrderPQ = singleq.OrderPQ
	// OrderFIFO serves in arrival order.
	OrderFIFO = singleq.OrderFIFO
)

// NewSingleQueue builds the single-queue architecture of Fig. 1 (top):
// every core can process any packet; the order decides starvation
// behaviour.
func NewSingleQueue(cfg SingleQueueConfig) (*SingleQueue, error) { return singleq.New(cfg) }

// Worst-case hunting (the empirical side of the open problems).
type (
	// HuntSpec parameterizes a randomized worst-case hunt against the
	// exact offline optimum.
	HuntSpec = search.Spec
	// HuntResult is the most adversarial instance a hunt certified.
	HuntResult = search.Worst
)

// Hunt runs a randomized worst-case search for the spec's policy on tiny
// exact-solvable instances.
func Hunt(spec HuntSpec) (HuntResult, error) { return search.Run(spec) }

// MappingReport summarizes a Theorem 7 proof-harness run.
type MappingReport = mapcheck.Report

// CheckTheorem7Mapping runs LWD and the given non-push-out opponent in
// lockstep on the trace while maintaining the paper's Fig. 3 mapping
// routine (repaired variant) and checking Lemma 8's invariant at every
// event. A nil error certifies the 2-competitiveness accounting on this
// instance.
func CheckTheorem7Mapping(cfg Config, opponent Policy, tr Trace) (MappingReport, error) {
	return mapcheck.Run(cfg, opponent, tr)
}

// CheckTheorem7MappingLiteral runs the mapping routine exactly as
// written in the paper; it fails on instances exercising the A3 corner
// documented in DESIGN.md.
func CheckTheorem7MappingLiteral(cfg Config, opponent Policy, tr Trace) (MappingReport, error) {
	return mapcheck.RunLiteral(cfg, opponent, tr)
}

// Fault injection and graceful degradation (the robustness study the
// competitive analysis cannot answer: how far the nominal guarantees
// erode when the switch itself misbehaves).
type (
	// FaultSpec is a set of periodic faults plus the horizon they are
	// scheduled over. Identical (spec, ports, seed) triples materialize
	// byte-identical schedules.
	FaultSpec = faults.Spec
	// Fault is one periodic degradation: a kind, an optional target
	// port (-1 rotates deterministically), a kind-specific value, and a
	// period/duration pair.
	Fault = faults.Fault
	// FaultEvent is one materialized fault window [Start, End) of a
	// schedule.
	FaultEvent = faults.Event
	// FaultKind enumerates the supported fault kinds.
	FaultKind = faults.Kind
	// FaultInjector wraps a System with a deterministic fault schedule;
	// it is itself a System, so it drops into RunTrace and Instance
	// unchanged.
	FaultInjector = faults.Injector
)

// Fault kinds.
const (
	// FaultCoreSlowdown drops a port's speedup to C' for a window.
	FaultCoreSlowdown = faults.CoreSlowdown
	// FaultPortBlackout stops a port's transmission entirely.
	FaultPortBlackout = faults.PortBlackout
	// FaultBufferSqueeze transiently shrinks the effective shared
	// buffer; push-out policies evict via their own rule, non-push-out
	// policies tail-drop.
	FaultBufferSqueeze = faults.BufferSqueeze
	// FaultBurstAmplify duplicates and deterministically reorders
	// arrival bursts.
	FaultBurstAmplify = faults.BurstAmplify
)

// ParseFaultSpec parses the CLI fault syntax, e.g.
// "blackout;squeeze:b=32:period=500:dur=100". The caller sets the
// returned spec's Horizon (smbsim uses the run's slot count).
func ParseFaultSpec(s string) (FaultSpec, error) { return faults.ParseSpec(s) }

// NewFaultInjector wraps sys with the spec's schedule for a switch with
// the given port count. It fails when sys lacks a capability the spec
// needs (port throttling or buffer squeezing).
func NewFaultInjector(sys System, spec FaultSpec, ports int, seed int64) (*FaultInjector, error) {
	return faults.New(sys, spec, ports, seed)
}

// CanonicalFaultMix returns the fault mix behind the "faults"
// experiment panel for a switch with the given geometry: rotating core
// slowdowns and port blackouts, transient buffer squeezes, and burst
// amplification.
func CanonicalFaultMix(ports, buffer, speedup int, horizon int64) FaultSpec {
	return faults.CanonicalMix(ports, buffer, speedup, horizon)
}

// Degradation reports how one policy's empirical competitive ratio
// erodes when a fault schedule is injected symmetrically into the
// policy and the OPT proxy.
type Degradation struct {
	// Policy is the policy name.
	Policy string
	// Nominal is the competitive ratio without faults.
	Nominal float64
	// Faulted is the competitive ratio under the fault schedule.
	Faulted float64
	// Penalty is Faulted / Nominal (1.0 = fully graceful degradation).
	Penalty float64
}

// DegradationReport runs every policy and the OPT proxy on the same
// arrival stream twice — once nominal and once under spec, injected
// with the identical schedule into each system — and reports the
// per-policy ratio erosion. A zero spec Horizon defaults to the stream
// length.
func DegradationReport(cfg Config, policies []Policy, src Provider, flushEvery int, spec FaultSpec, seed int64) ([]Degradation, error) {
	inst := Instance{Cfg: cfg, Policies: policies, Provider: src, FlushEvery: flushEvery}
	base, err := inst.Run()
	if err != nil {
		return nil, err
	}
	if spec.Horizon == 0 {
		spec.Horizon = int64(src.Slots())
	}
	inst.Wrap = faults.Wrapper(spec, cfg.Ports, seed)
	degraded, err := inst.Run()
	if err != nil {
		return nil, err
	}
	out := make([]Degradation, len(base))
	for i, r := range base {
		d := Degradation{Policy: r.Policy, Nominal: r.Ratio, Faulted: degraded[i].Ratio}
		if d.Nominal > 0 {
			d.Penalty = d.Faulted / d.Nominal
		}
		out[i] = d
	}
	return out, nil
}
