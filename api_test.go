package smbm_test

import (
	"testing"

	"smbm"
)

// quickCfg is the quickstart configuration: four services of different
// costs behind one shared buffer.
func quickCfg() smbm.Config {
	return smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    4,
		Buffer:   64,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 6},
	}
}

func TestPublicQuickstartFlow(t *testing.T) {
	sw, err := smbm.NewSwitch(quickCfg(), smbm.LWD())
	if err != nil {
		t.Fatal(err)
	}
	burst := []smbm.Packet{
		smbm.WorkPacket(0, 1),
		smbm.WorkPacket(3, 6),
		smbm.WorkPacket(1, 2),
	}
	if err := sw.Step(burst); err != nil {
		t.Fatal(err)
	}
	sw.Drain()
	st := sw.Stats()
	if st.Transmitted != 3 {
		t.Errorf("transmitted %d, want 3", st.Transmitted)
	}
}

func TestPolicyRosters(t *testing.T) {
	if got := len(smbm.ProcessingPolicies()); got != 8 {
		t.Errorf("processing roster %d, want 8", got)
	}
	if got := len(smbm.ValuePolicies()); got != 7 {
		t.Errorf("value roster %d, want 7", got)
	}
	if got := len(smbm.ValueByPortPolicies()); got != 8 {
		t.Errorf("value-by-port roster %d, want 8", got)
	}
	names := map[string]smbm.Policy{
		"LWD": smbm.LWD(), "LQD": smbm.LQD(), "BPD": smbm.BPD(), "BPD1": smbm.BPD1(),
		"Greedy": smbm.Greedy(), "NHST": smbm.NHST(), "NEST": smbm.NEST(), "NHDT": smbm.NHDT(),
		"MRD": smbm.MRD(), "MVD": smbm.MVD(), "MVD1": smbm.MVD1(), "NHSTV": smbm.NHSTV(),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy %q reports name %q", want, p.Name())
		}
	}
	if got := smbm.ValueLQD().Name(); got != "LQD" {
		t.Errorf("ValueLQD name %q", got)
	}
}

func TestCompetitiveRatioOnMMPP(t *testing.T) {
	cfg := quickCfg()
	mmpp := smbm.MMPPConfig{
		Sources:      30,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelWorkByPort,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         5,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(5)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		t.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 2000)
	ratio, err := smbm.CompetitiveRatio(cfg, smbm.LWD(), trace, 500)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 1.0 || ratio > 2.5 {
		t.Errorf("LWD empirical ratio %.3f outside plausible range", ratio)
	}

	results, err := smbm.Compare(cfg, smbm.ProcessingPolicies(), trace, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("%d results", len(results))
	}
	// LWD must be the best or tied-best push-out policy on this load.
	byName := map[string]smbm.Result{}
	for _, r := range results {
		byName[r.Policy] = r
	}
	if byName["LWD"].Ratio > byName["BPD"].Ratio {
		t.Errorf("LWD %.3f worse than BPD %.3f", byName["LWD"].Ratio, byName["BPD"].Ratio)
	}
}

func TestExactOptimumFacade(t *testing.T) {
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    2,
		Buffer:   3,
		MaxLabel: 2,
		Speedup:  1,
		PortWork: []int{1, 2},
	}
	tr := smbm.Trace{{smbm.WorkPacket(0, 1), smbm.WorkPacket(1, 2)}}
	got, err := smbm.ExactOptimum(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("exact = %d, want 2", got)
	}
	vcfg := smbm.Config{Model: smbm.ModelValue, Ports: 2, Buffer: 3, MaxLabel: 4, Speedup: 1}
	vtr := smbm.Trace{{smbm.ValuePacket(0, 4), smbm.ValuePacket(1, 2)}}
	gotV, err := smbm.ExactOptimum(vcfg, vtr)
	if err != nil {
		t.Fatal(err)
	}
	if gotV != 6 {
		t.Errorf("exact value = %d, want 6", gotV)
	}
}

func TestLowerBoundsFacade(t *testing.T) {
	cs, err := smbm.LowerBounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 9 {
		t.Errorf("%d constructions, want 9", len(cs))
	}
	if got := len(smbm.PanelIDs()); got != 9 {
		t.Errorf("%d panels, want 9", got)
	}
	if got := smbm.ContiguousWorks(3); len(got) != 3 || got[2] != 3 {
		t.Errorf("ContiguousWorks(3) = %v", got)
	}
}

func TestOptProxyFacade(t *testing.T) {
	opt, err := smbm.NewOptProxy(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := smbm.RunTrace(opt, smbm.Trace{{smbm.WorkPacket(0, 1)}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Transmitted != 1 {
		t.Errorf("proxy transmitted %d", stats.Transmitted)
	}
	threshold := smbm.StaticThreshold("opt-script", []int{2, 2, 2, 2})
	if threshold.Name() != "opt-script" {
		t.Errorf("threshold name %q", threshold.Name())
	}
}
