// Valuetiers: the Section IV model on a service-tier scenario. Four
// customer tiers — best-effort, bronze, silver, gold — map to four output
// ports with intrinsic per-packet values 1, 2, 4 and 8 (the paper's
// value≡port special case). We replay the same congested traffic under
// every value-model policy and report total transmitted value against
// the OPT proxy, plus per-tier delivery so the fairness/value tradeoff
// is visible: MVD maximizes admitted value but starves cheap tiers, MRD
// balances both.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"smbm"
)

var tiers = []struct {
	name  string
	value int
}{
	{"best-effort", 1},
	{"bronze", 2},
	{"silver", 4},
	{"gold", 8},
}

func main() {
	cfg := smbm.Config{
		Model:    smbm.ModelValue,
		Ports:    len(tiers),
		Buffer:   128,
		MaxLabel: 8,
		Speedup:  1,
	}

	// Bursty sources pinned to tiers, offering ~2.5x the switch's
	// 4 packets/slot service capacity.
	mmpp := smbm.MMPPConfig{
		Sources:      40,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelValueUniform, // placeholder; packets relabeled below
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortAffinity: true,
		Seed:         7,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(10)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		log.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 20000)
	// Stamp each packet with its tier's value (value ≡ port).
	for _, slot := range trace {
		for i := range slot {
			slot[i].Value = tiers[slot[i].Port].value
		}
	}

	policies := []smbm.Policy{
		smbm.Greedy(), smbm.NEST(), smbm.ValueLQD(), smbm.MVD(), smbm.MVD1(), smbm.MRD(),
	}
	results, err := smbm.Compare(cfg, policies, trace, 5000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d slots, %d arrivals, OPT proxy delivered value %d\n\n",
		len(trace), trace.Packets(), results[0].OptThroughput)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tvalue delivered\tratio\tpackets\tpushed out")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%d\t%d\n",
			r.Policy, r.Throughput, r.Ratio, r.Stats.Transmitted, r.Stats.PushedOut)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	// Per-tier delivery under MVD vs MRD: who gets starved? The switch
	// tracks per-port counters natively.
	fmt.Println("\nper-tier delivery rate (starvation check):")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\tbest-effort\tbronze\tsilver\tgold")
	for _, p := range []smbm.Policy{smbm.MVD(), smbm.MRD(), smbm.ValueLQD()} {
		sw, err := smbm.NewSwitch(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := smbm.RunTrace(sw, trace, 5000); err != nil {
			log.Fatal(err)
		}
		pc := sw.PortCounters()
		fmt.Fprintf(w, "%s\t%.2f\t%.2f\t%.2f\t%.2f\n", p.Name(),
			pc[0].DeliveryRate(), pc[1].DeliveryRate(), pc[2].DeliveryRate(), pc[3].DeliveryRate())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
