// Heteroservices: the paper's motivating scenario. A network-edge box
// terminates four traffic classes with very different per-packet costs —
// plain forwarding, firewalling, SSL termination and IPsec — behind one
// shared buffer, one core per class. We replay the same bursty day
// (MMPP on-off sources) under every admission policy of Section III and
// report throughput, loss and latency against the OPT proxy.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"smbm"
)

func main() {
	// Traffic classes and their per-packet cost in processor cycles.
	classes := []struct {
		name string
		work int
	}{
		{"forwarding", 1},
		{"firewall", 2},
		{"ssl", 4},
		{"ipsec", 8},
	}
	works := make([]int, len(classes))
	for i, c := range classes {
		works[i] = c.work
	}

	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    len(classes),
		Buffer:   256,
		MaxLabel: 8,
		Speedup:  1,
		PortWork: works,
	}

	// A bursty day: 60 on-off sources, each pinned to one class,
	// offering ~2.3x the switch's service capacity (capacity is
	// sum of 1/w = 1.875 packets/slot).
	mmpp := smbm.MMPPConfig{
		Sources:      60,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelWorkByPort,
		Ports:        cfg.Ports,
		MaxLabel:     cfg.MaxLabel,
		PortWork:     works,
		PortAffinity: true,
		Seed:         42,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(4.3)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		log.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 20000)

	results, err := smbm.Compare(cfg, smbm.ProcessingPolicies(), trace, 5000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("20000 slots, %d arrivals, OPT proxy transmitted %d packets\n\n",
		trace.Packets(), results[0].OptThroughput)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "policy\ttransmitted\tratio\tloss%\tpushed out\tmean latency")
	for _, r := range results {
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.1f\t%d\t%.1f slots\n",
			r.Policy, r.Throughput, r.Ratio,
			100*r.Stats.LossRate(), r.Stats.PushedOut, r.Stats.MeanLatency())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nLWD accounts for buffered *work*, so expensive IPsec bursts cannot")
	fmt.Println("monopolize the shared buffer the way they do under LQD or Greedy.")
}
