// Theorem7: the paper's main theorem as a runnable artifact. Three acts:
//
//  1. Falsification hunt — randomized adversarial search against the
//     exact offline optimum tries to push LWD's ratio above 2 (it never
//     succeeds; the best it finds is printed).
//  2. Proof harness — the paper's Fig. 3 mapping routine runs live on
//     bursty traffic against a clairvoyant threshold opponent, checking
//     Lemma 8's invariant after every arrival and transmission.
//  3. The gap — the same harness in literal mode on the minimal witness
//     where the routine as written violates its own latency claim
//     (DESIGN.md documents the corner), and the repaired routine
//     surviving the identical instance.
package main

import (
	"fmt"
	"log"

	"smbm"
)

func main() {
	// Act 1: try to break LWD's 2-competitiveness empirically.
	hunt := smbm.HuntSpec{
		Cfg: smbm.Config{
			Model:    smbm.ModelProcessing,
			Ports:    3,
			Buffer:   4,
			MaxLabel: 3,
			Speedup:  1,
			PortWork: smbm.ContiguousWorks(3),
		},
		Policy:   smbm.LWD(),
		Slots:    6,
		MaxBurst: 4,
		Trials:   300,
		Climb:    40,
		Seed:     1,
	}
	worst, err := smbm.Hunt(hunt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("act 1 — falsification hunt over %d instances:\n", worst.Evaluated)
	fmt.Printf("  worst certified LWD ratio: %.4f (theorem says <= 2)\n\n", worst.Ratio)

	// Act 2: run the proof's mapping routine on congested MMPP traffic.
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    4,
		Buffer:   32,
		MaxLabel: 4,
		Speedup:  1,
		PortWork: smbm.ContiguousWorks(4),
	}
	mmpp := smbm.MMPPConfig{
		Sources:      20,
		POnOff:       0.1,
		POffOn:       0.01,
		Label:        smbm.LabelWorkByPort,
		Ports:        4,
		MaxLabel:     4,
		PortWork:     cfg.PortWork,
		PortAffinity: true,
		Seed:         7,
	}
	mmpp.LambdaOn = mmpp.LambdaForRate(5)
	gen, err := smbm.NewMMPP(mmpp)
	if err != nil {
		log.Fatal(err)
	}
	trace := smbm.RecordTrace(gen, 500)
	opponent := smbm.StaticThreshold("OPT(script)", []int{20, 4, 4, 4})
	rep, err := smbm.CheckTheorem7Mapping(cfg, opponent, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("act 2 — Fig. 3 mapping maintained live on 500 bursty slots:")
	fmt.Printf("  events checked: %d, LWD sent %d, OPT sent %d, max charge %d (<= 2)\n\n",
		rep.Events, rep.LwdSent, rep.OptSent, rep.MaxCharge)

	// Act 3: the corner where the routine as written breaks.
	small := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    3,
		Buffer:   4,
		MaxLabel: 3,
		Speedup:  1,
		PortWork: smbm.ContiguousWorks(3),
	}
	witness := smbm.Trace{
		{smbm.WorkPacket(1, 2)},
		{smbm.WorkPacket(2, 3), smbm.WorkPacket(0, 1), smbm.WorkPacket(0, 1), smbm.WorkPacket(0, 1)},
		{smbm.WorkPacket(2, 3)},
	}
	fmt.Println("act 3 — the 6-packet witness against the literal routine:")
	if _, err := smbm.CheckTheorem7MappingLiteral(small, smbm.Greedy(), witness); err != nil {
		fmt.Printf("  literal Fig. 3:  %v\n", err)
	} else {
		fmt.Println("  literal Fig. 3:  unexpectedly passed")
	}
	if rep, err := smbm.CheckTheorem7Mapping(small, smbm.Greedy(), witness); err == nil {
		fmt.Printf("  repaired routine: invariant held (LWD %d, OPT %d)\n", rep.LwdSent, rep.OptSent)
	} else {
		fmt.Printf("  repaired routine: %v\n", err)
	}
}
