// Quickstart: simulate a 4-port shared-memory switch whose ports run
// services of very different costs, drive it through one congested burst
// with the paper's LWD policy, and print what happened.
package main

import (
	"fmt"
	"log"

	"smbm"
)

func main() {
	// Four services share one buffer: a firewall check costs 1 cycle per
	// packet, SSL termination 2, deep packet inspection 3, IPsec 6.
	cfg := smbm.Config{
		Model:    smbm.ModelProcessing,
		Ports:    4,
		Buffer:   64,
		MaxLabel: 6,
		Speedup:  1,
		PortWork: []int{1, 2, 3, 6},
	}
	sw, err := smbm.NewSwitch(cfg, smbm.LWD())
	if err != nil {
		log.Fatal(err)
	}

	// Slot 0: a burst far beyond the buffer: 48 firewall packets, 24
	// SSL, 16 DPI, 12 IPsec = 100 packets into a 64-packet buffer.
	var burst []smbm.Packet
	for i := 0; i < 48; i++ {
		burst = append(burst, smbm.WorkPacket(0, 1))
	}
	for i := 0; i < 24; i++ {
		burst = append(burst, smbm.WorkPacket(1, 2))
	}
	for i := 0; i < 16; i++ {
		burst = append(burst, smbm.WorkPacket(2, 3))
	}
	for i := 0; i < 12; i++ {
		burst = append(burst, smbm.WorkPacket(3, 6))
	}
	if err := sw.Step(burst); err != nil {
		log.Fatal(err)
	}

	fmt.Println("after the burst (LWD balances buffered *work*, not queue length):")
	for i := 0; i < cfg.Ports; i++ {
		fmt.Printf("  port %d (work %d): %2d packets, %2d cycles of residual work\n",
			i, cfg.PortWork[i], sw.QueueLen(i), sw.QueueWork(i))
	}

	slots := sw.Drain()
	st := sw.Stats()
	fmt.Printf("\ndrained in %d slots\n", slots)
	fmt.Printf("arrived %d, accepted %d, pushed out %d, dropped %d, transmitted %d\n",
		st.Arrived, st.Accepted, st.PushedOut, st.Dropped, st.Transmitted)
	fmt.Printf("mean latency: %.1f slots\n", st.MeanLatency())

	// The same burst under the classical LQD, which ignores work: LQD
	// balances queue *lengths*, so the IPsec queue hoards 6x the work
	// and the switch needs far longer to clear. Compare how much each
	// policy gets out the door in the 30 slots after the burst.
	within := func(p smbm.Policy) (sent int64, drainSlots int) {
		s, err := smbm.NewSwitch(cfg, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Step(burst); err != nil {
			log.Fatal(err)
		}
		for t := 0; t < 30; t++ {
			if err := s.Step(nil); err != nil {
				log.Fatal(err)
			}
		}
		sent = s.Stats().Transmitted
		return sent, 31 + s.Drain()
	}
	lwdSent, lwdSlots := within(smbm.LWD())
	lqdSent, lqdSlots := within(smbm.LQD())
	fmt.Printf("\nwithin 30 slots of the burst: LWD transmitted %d packets, LQD %d\n", lwdSent, lqdSent)
	fmt.Printf("full drain: LWD %d slots, LQD %d slots\n", lwdSlots, lqdSlots)
}
