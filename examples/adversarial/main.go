// Adversarial: replay the paper's lower-bound constructions. Each
// theorem packages an arrival script that makes a specific policy look as
// bad as the analysis allows, together with the clairvoyant strategy the
// proof plays as OPT. This example runs all of them and shows the
// measured throughput gap next to the proof's prediction — competitive
// analysis as an executable artifact.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"smbm"
)

func main() {
	constructions, err := smbm.LowerBounds()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("lower-bound constructions (measured = scripted-OPT / policy):")
	fmt.Println()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "theorem\tpolicy\tmeasured\tproof predicts\tasymptotic bound")
	for _, c := range constructions {
		o, err := c.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%s\t%.3f\t%.3f\t%s = %.3f\n",
			o.Theorem, o.PolicyName, o.Ratio, o.Predicted, c.Asymptotic, o.AsymptoticValue)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("Reading the table: LQD collapses under heterogeneous processing")
	fmt.Println("(Theorem 4) and heterogeneous values (Theorem 9); BPD/MVD starve")
	fmt.Println("ports (Theorems 5/10). Only LWD and MRD stay near their constant")
	fmt.Println("bounds (Theorems 6/11) — the paper's case for work- and")
	fmt.Println("ratio-balancing policies.")
}
